// caf::Conduit — the communication-layer abstraction of the UHCAF runtime.
//
// The paper's UHCAF runtime can execute over GASNet, ARMCI, or (this
// paper's contribution) OpenSHMEM. This interface captures exactly the
// primitives the CAF translation of §IV needs:
//
//   * collective symmetric allocation       (allocate/deallocate — Table II
//     maps CAF `allocate` to `shmalloc`);
//   * contiguous one-sided put/get          (§IV-B, with quiet for CAF's
//     stronger completion ordering);
//   * 1-D strided put/get                   (§IV-C building block — may be
//     hardware-offloaded or a software loop, the conduit decides);
//   * 64-bit remote atomics                 (§IV-D locks; conduits without
//     native atomics emulate them, at a cost);
//   * local wait on a symmetric 64-bit word (MCS spin-on-local);
//   * barrier, and optionally native broadcast/reduction.
//
// All offsets are into the conduit's symmetric segment; CAF image indices
// here are 0-based ranks (the Runtime converts to CAF's 1-based images).
//
// The public RMA entry points (put/iput/put_scatter/quiet/...) are
// NON-virtual fronts over protected do_* hooks: the base class maintains a
// per-issuing-rank outstanding-put tracker so quiet() is elided (a cheap
// no-op, no conduit call) when nothing is in flight. This is the
// "deferred-quiet completion tracking" half of the nonblocking RMA pipeline;
// the runtime's aggregation buffer sits above it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fabric/domain.hpp"  // fabric::ScatterRec
#include "net/model.hpp"
#include "obs/obs.hpp"
#include "shmem/world.hpp"  // for shmem::Cmp / ReduceOp enums reused here

namespace caf {

using Cmp = shmem::Cmp;
using ReduceOp = shmem::ReduceOp;

class Conduit {
 public:
  virtual ~Conduit() = default;

  // ---- identity & segment ----
  virtual int rank() const = 0;       // 0-based
  virtual int nranks() const = 0;
  virtual std::byte* segment(int rank) = 0;
  virtual std::size_t segment_bytes() const = 0;
  virtual const net::SwProfile& sw() const = 0;
  virtual sim::Engine& engine() = 0;

  /// True when the conduit's 1-D strided transfers are NIC-offloaded
  /// (Cray SHMEM over DMAPP); false when they loop in software
  /// (MVAPICH2-X SHMEM, GASNet).
  virtual bool hw_strided() const = 0;
  /// True when remote atomics run on the NIC; false when they are
  /// active-message emulations (GASNet).
  virtual bool native_amo() const = 0;

  /// True when `target`'s segment is directly load/store addressable from
  /// the calling rank — same node and the conduit has it mapped (e.g.
  /// shmem_ptr with the intra-node-direct optimization enabled). Layers
  /// above (the hierarchical collectives engine) use this capability query
  /// to replace intra-node network messages with host copies; the default
  /// is conservative.
  virtual bool direct_reachable(int /*target*/) { return false; }

  /// The fabric::Domain this conduit's RMA rides on, or nullptr for
  /// conduits without one. Lets the runtime enable Domain-level features
  /// (the node-local shared-segment transport) and lets pricing layers
  /// (the collectives selector, caf::NodeHeap) query its state without
  /// knowing the concrete conduit type.
  virtual fabric::Domain* rma_domain() { return nullptr; }

  /// True when the node-local shared-segment transport is active and
  /// `target` shares the calling rank's node: same-node RMA to it completes
  /// via memcpy/SPSC rings with zero fabric messages.
  bool node_transport_reachable(int target) {
    fabric::Domain* d = rma_domain();
    return d != nullptr && d->node_transport() != nullptr &&
           d->fabric().same_node(rank(), target);
  }

  /// Collective hook invoked once per image by Runtime::init() after the
  /// runtime's internal allocations; conduits needing collective setup
  /// (e.g. ARMCI mutex creation) override it.
  virtual void post_init() {}

  /// Scheduler-context store into `rank`'s segment at virtual time `t`,
  /// firing the conduit's write hooks so blocked waiters wake. Used by the
  /// runtime's failure handler (and AM handlers) which mutate target memory
  /// from the event loop rather than through a fiber's NIC path.
  virtual void poke(int rank, std::uint64_t off, const void* src,
                    std::size_t n, sim::Time t) = 0;

  // ---- collective symmetric allocation ----
  /// Collective; every rank calls with the same size and receives the same
  /// segment offset. Includes an implicit barrier.
  virtual std::uint64_t allocate(std::size_t bytes) = 0;
  virtual void deallocate(std::uint64_t offset) = 0;

  // ---- one-sided RMA (non-virtual fronts over do_* hooks) ----
  void put(int rank, std::uint64_t dst_off, const void* src, std::size_t n,
           bool nbi) {
    note_put(rank);
    obs::Span sp(obs::Cat::kPut, n, static_cast<std::uint32_t>(rank));
    do_put(rank, dst_off, src, n, nbi);
  }
  void get(void* dst, int rank, std::uint64_t src_off, std::size_t n) {
    obs::Span sp(obs::Cat::kGet, n, static_cast<std::uint32_t>(rank));
    do_get(dst, rank, src_off, n);
  }
  /// 1-D strided put/get; strides in elements (shmem_iput conventions).
  void iput(int rank, std::uint64_t dst_off, std::ptrdiff_t dst_stride,
            const void* src, std::ptrdiff_t src_stride, std::size_t elem_bytes,
            std::size_t nelems) {
    note_put(rank);
    obs::Span sp(obs::Cat::kIput, elem_bytes * nelems,
                 static_cast<std::uint32_t>(rank));
    do_iput(rank, dst_off, dst_stride, src, src_stride, elem_bytes, nelems);
  }
  void iget(void* dst, std::ptrdiff_t dst_stride, int rank,
            std::uint64_t src_off, std::ptrdiff_t src_stride,
            std::size_t elem_bytes, std::size_t nelems) {
    obs::Span sp(obs::Cat::kIget, elem_bytes * nelems,
                 static_cast<std::uint32_t>(rank));
    do_iget(dst, dst_stride, rank, src_off, src_stride, elem_bytes, nelems);
  }
  /// Vectored (write-combining) put: packed payload + per-record headers as
  /// one nbi message, scattered at the target. Completion via quiet().
  void put_scatter(int rank, const fabric::ScatterRec* recs, std::size_t nrecs,
                   const void* payload, std::size_t payload_bytes) {
    Tracker& t = note_put(rank);
    ++*t.scatter_msgs;
    obs::Span sp(obs::Cat::kScatter, payload_bytes,
                 static_cast<std::uint32_t>(rank));
    do_put_scatter(rank, recs, nrecs, payload, payload_bytes);
  }
  /// Remote completion of all outstanding puts from this rank. Elided (no
  /// conduit call at all) when the tracker shows nothing in flight — the
  /// "cheap no-op" half of deferred-quiet.
  void quiet() {
    Tracker& t = tracker();
    ++*t.quiet_calls;
    if (t.dirty_list.empty()) {
      ++*t.quiet_elided;
      return;
    }
    obs::Span sp(obs::Cat::kQuiet, t.dirty_list.size());
    do_quiet();
    for (int r : t.dirty_list) t.dirty[static_cast<std::size_t>(r)] = 0;
    t.dirty_list.clear();
  }

  /// True when this rank has issued puts to `target` not yet covered by a
  /// quiet().
  bool pending(int target) {
    Tracker& t = tracker();
    return t.dirty[static_cast<std::size_t>(target)] != 0;
  }
  /// True when any put from this rank is outstanding.
  bool pending_any() { return !tracker().dirty_list.empty(); }

  // ---- 64-bit remote atomics (non-virtual fronts over do_amo_* hooks) ----
  std::int64_t amo_swap(int rank, std::uint64_t off, std::int64_t value) {
    obs::Span sp(obs::Cat::kAmo, 8, static_cast<std::uint32_t>(rank));
    return do_amo_swap(rank, off, value);
  }
  std::int64_t amo_cswap(int rank, std::uint64_t off, std::int64_t cond,
                         std::int64_t value) {
    obs::Span sp(obs::Cat::kAmo, 8, static_cast<std::uint32_t>(rank));
    return do_amo_cswap(rank, off, cond, value);
  }
  std::int64_t amo_fadd(int rank, std::uint64_t off, std::int64_t value) {
    obs::Span sp(obs::Cat::kAmo, 8, static_cast<std::uint32_t>(rank));
    return do_amo_fadd(rank, off, value);
  }
  std::int64_t amo_fand(int rank, std::uint64_t off, std::int64_t mask) {
    obs::Span sp(obs::Cat::kAmo, 8, static_cast<std::uint32_t>(rank));
    return do_amo_fand(rank, off, mask);
  }
  std::int64_t amo_for(int rank, std::uint64_t off, std::int64_t mask) {
    obs::Span sp(obs::Cat::kAmo, 8, static_cast<std::uint32_t>(rank));
    return do_amo_for(rank, off, mask);
  }
  std::int64_t amo_fxor(int rank, std::uint64_t off, std::int64_t mask) {
    obs::Span sp(obs::Cat::kAmo, 8, static_cast<std::uint32_t>(rank));
    return do_amo_fxor(rank, off, mask);
  }

  // ---- synchronization ----
  /// Blocks until the 64-bit word at `off` in the *local* segment satisfies
  /// cmp/value (woken by remote deliveries; no busy polling).
  virtual void wait_until(std::uint64_t off, Cmp cmp, std::int64_t value) = 0;
  void barrier() {
    obs::Span sp(obs::Cat::kBarrier);
    do_barrier();
  }

  // ---- optional native collectives (Table II: co_broadcast →
  //      shmem_broadcast, co_<op> → shmem_<op>_to_all) ----
  virtual bool has_native_collectives() const { return false; }
  virtual void native_broadcast(std::uint64_t /*off*/, std::size_t /*nbytes*/,
                                int /*root*/) {}
  virtual void native_reduce_f64(std::uint64_t /*off*/, std::size_t /*nelems*/,
                                 ReduceOp /*op*/) {}
  virtual void native_reduce_i64(std::uint64_t /*off*/, std::size_t /*nelems*/,
                                 ReduceOp /*op*/) {}

 protected:
  // ---- RMA hooks implemented by each conduit ----
  virtual void do_put(int rank, std::uint64_t dst_off, const void* src,
                      std::size_t n, bool nbi) = 0;
  virtual void do_get(void* dst, int rank, std::uint64_t src_off,
                      std::size_t n) = 0;
  virtual void do_iput(int rank, std::uint64_t dst_off,
                       std::ptrdiff_t dst_stride, const void* src,
                       std::ptrdiff_t src_stride, std::size_t elem_bytes,
                       std::size_t nelems) = 0;
  virtual void do_iget(void* dst, std::ptrdiff_t dst_stride, int rank,
                       std::uint64_t src_off, std::ptrdiff_t src_stride,
                       std::size_t elem_bytes, std::size_t nelems) = 0;
  /// Default: record-at-a-time nbi puts (no wire-level combining). Conduits
  /// with a vectored native call (shmemx scatter, GASNet access regions,
  /// ARMCI_PutV, MPI datatypes) override for one-message delivery.
  virtual void do_put_scatter(int rank, const fabric::ScatterRec* recs,
                              std::size_t nrecs, const void* payload,
                              std::size_t payload_bytes) {
    const auto* p = static_cast<const std::byte*>(payload);
    for (std::size_t i = 0; i < nrecs; ++i) {
      do_put(rank, recs[i].dst_off, p + recs[i].payload_off, recs[i].len,
             /*nbi=*/true);
    }
    (void)payload_bytes;
  }
  virtual void do_quiet() = 0;

  // ---- atomic / barrier hooks implemented by each conduit ----
  virtual std::int64_t do_amo_swap(int rank, std::uint64_t off,
                                   std::int64_t value) = 0;
  virtual std::int64_t do_amo_cswap(int rank, std::uint64_t off,
                                    std::int64_t cond, std::int64_t value) = 0;
  virtual std::int64_t do_amo_fadd(int rank, std::uint64_t off,
                                   std::int64_t value) = 0;
  virtual std::int64_t do_amo_fand(int rank, std::uint64_t off,
                                   std::int64_t mask) = 0;
  virtual std::int64_t do_amo_for(int rank, std::uint64_t off,
                                  std::int64_t mask) = 0;
  virtual std::int64_t do_amo_fxor(int rank, std::uint64_t off,
                                   std::int64_t mask) = 0;
  virtual void do_barrier() = 0;

 private:
  /// Per-issuing-rank dirty-target tracking. All images share one Conduit
  /// object per stack, so state is keyed by the calling fiber's rank.
  /// Pipeline counters live in the obs registry under "rma.*" keyed by this
  /// rank; the registry zeroes values in place on reset, so the cached
  /// handles stay valid across back-to-back runs on one stack.
  struct Tracker {
    std::vector<std::uint8_t> dirty;  ///< dirty[target] != 0 → puts in flight
    std::vector<int> dirty_list;      ///< targets with the flag set
    std::uint64_t* tracked_puts = nullptr;
    std::uint64_t* scatter_msgs = nullptr;
    std::uint64_t* quiet_calls = nullptr;
    std::uint64_t* quiet_elided = nullptr;
  };

  Tracker& tracker() {
    if (trk_.empty()) trk_.resize(static_cast<std::size_t>(nranks()));
    Tracker& t = trk_[static_cast<std::size_t>(rank())];
    if (t.dirty.empty()) {
      t.dirty.assign(static_cast<std::size_t>(nranks()), 0);
      auto& reg = obs::registry();
      const int r = rank();
      t.tracked_puts = &reg.counter(r, "rma.tracked_puts");
      t.scatter_msgs = &reg.counter(r, "rma.scatter_msgs");
      t.quiet_calls = &reg.counter(r, "rma.quiet_calls");
      t.quiet_elided = &reg.counter(r, "rma.quiet_elided");
    }
    return t;
  }

  Tracker& note_put(int target) {
    Tracker& t = tracker();
    ++*t.tracked_puts;
    if (!t.dirty[static_cast<std::size_t>(target)]) {
      t.dirty[static_cast<std::size_t>(target)] = 1;
      t.dirty_list.push_back(target);
    }
    return t;
  }

  std::vector<Tracker> trk_;
};

}  // namespace caf
