#include "caf/armci_conduit.hpp"

namespace caf {

ArmciConduit::ArmciConduit(armci::World& world)
    : world_(world), seg_bytes_(world.seg_bytes()) {}

std::int64_t ArmciConduit::emulated_rmw(
    int rank, std::uint64_t off,
    const std::function<std::int64_t(std::int64_t)>& f) {
  // Lazily create the conduit's emulation mutex (collective on first use is
  // not possible here, so it is created in the first collective call path:
  // allocate() precedes any atomic in the runtime's init()). We create it
  // on demand under the assumption every rank performs at least one
  // collective allocation first — enforced by Runtime::init().
  if (rmw_mutex_ < 0) {
    throw std::logic_error(
        "ArmciConduit: call init_mutexes() collectively before atomics");
  }
  world_.lock(rmw_mutex_, rank);
  std::int64_t old = 0;
  world_.get(&old, rank, off, sizeof old);
  const std::int64_t neu = f(old);
  world_.put(rank, off, &neu, sizeof neu);
  world_.all_fence();
  world_.unlock(rmw_mutex_, rank);
  return old;
}

std::int64_t ArmciConduit::do_amo_cswap(int rank, std::uint64_t off,
                                     std::int64_t cond, std::int64_t v) {
  return emulated_rmw(rank, off, [cond, v](std::int64_t old) {
    return old == cond ? v : old;
  });
}

void ArmciConduit::wait_until(std::uint64_t off, Cmp cmp, std::int64_t value) {
  world_.wait_until_local(off, [cmp, value](std::int64_t v) {
    switch (cmp) {
      case Cmp::kEq: return v == value;
      case Cmp::kNe: return v != value;
      case Cmp::kGt: return v > value;
      case Cmp::kGe: return v >= value;
      case Cmp::kLt: return v < value;
      case Cmp::kLe: return v <= value;
    }
    return false;
  });
}

}  // namespace caf
