// Umbrella header for the CAF-over-OpenSHMEM runtime library.
//
// Typical use (see examples/quickstart.cpp):
//
//   sim::Engine engine;
//   net::Fabric fabric(net::machine_profile(net::Machine::kStampede), 32);
//   shmem::World shm(engine, fabric,
//                    net::sw_profile(net::Library::kShmemMvapich,
//                                    net::Machine::kStampede), 8 << 20);
//   caf::ShmemConduit conduit(shm);
//   caf::Runtime rt(conduit);
//   shm.launch([&] {
//     rt.init();
//     auto x = caf::make_coarray<int>(rt, {4});
//     ...
//     rt.sync_all();
//   });
//   engine.run();
#pragma once

#include "caf/coarray.hpp"
#include "caf/conduit.hpp"
#include "caf/armci_conduit.hpp"
#include "caf/future.hpp"
#include "caf/gasnet_conduit.hpp"
#include "caf/mpi3_conduit.hpp"
#include "caf/remote_ptr.hpp"
#include "caf/rpc.hpp"
#include "caf/runtime.hpp"
#include "caf/section.hpp"
#include "caf/shmem_conduit.hpp"
