#include "caf/replica.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "fabric/domain.hpp"
#include "obs/obs.hpp"

namespace caf::repl {

// ---------------------------------------------------------------------------
// ReplicaMap
// ---------------------------------------------------------------------------

ReplicaMap::ReplicaMap(int nimages, int cores_per_node, int replication,
                       std::int64_t num_shards)
    : n_(nimages), cpn_(cores_per_node), r_(replication) {
  if (nimages <= 0) throw std::invalid_argument("ReplicaMap: nimages <= 0");
  if (cores_per_node <= 0) {
    throw std::invalid_argument("ReplicaMap: cores_per_node <= 0");
  }
  if (replication <= 0) {
    throw std::invalid_argument("ReplicaMap: replication <= 0");
  }
  if (num_shards <= 0) {
    throw std::invalid_argument("ReplicaMap: num_shards <= 0");
  }
  dead_.assign(static_cast<std::size_t>(n_), 0);
  owners_.resize(static_cast<std::size_t>(num_shards));
  for (std::int64_t s = 0; s < num_shards; ++s) {
    fill(owners_[static_cast<std::size_t>(s)], s, dead_);
  }
}

void ReplicaMap::fill_impl(std::vector<int>& owners, std::int64_t shard, int n,
                           int cpn, int r, const std::vector<char>& dead) {
  const int home = static_cast<int>(shard % n);
  // Pass 0 admits only images on nodes not yet represented among the
  // owners; pass 1 relaxes that so single-node runs still reach R.
  for (int pass = 0; pass < 2 && static_cast<int>(owners.size()) < r; ++pass) {
    for (int d = 0; d < n && static_cast<int>(owners.size()) < r; ++d) {
      const int pe = (home + d) % n;
      if (dead[static_cast<std::size_t>(pe)] != 0) continue;
      if (std::find(owners.begin(), owners.end(), pe) != owners.end()) {
        continue;
      }
      if (pass == 0) {
        const int node = pe / cpn;
        const bool clash =
            std::any_of(owners.begin(), owners.end(),
                        [&](int o) { return o / cpn == node; });
        if (clash) continue;
      }
      owners.push_back(pe);
    }
  }
}

void ReplicaMap::fill(std::vector<int>& owners, std::int64_t shard,
                      const std::vector<char>& dead) const {
  fill_impl(owners, shard, n_, cpn_, r_, dead);
}

std::vector<int> ReplicaMap::compute_owners(std::int64_t shard, int nimages,
                                            int cores_per_node, int replication,
                                            const std::vector<int>& declared) {
  std::vector<char> dead(static_cast<std::size_t>(nimages), 0);
  std::vector<int> owners;
  fill_impl(owners, shard, nimages, cores_per_node, replication, dead);
  for (const int pe : declared) {
    if (pe < 0 || pe >= nimages) continue;
    dead[static_cast<std::size_t>(pe)] = 1;
    const auto it = std::find(owners.begin(), owners.end(), pe);
    if (it == owners.end()) continue;
    // Erasing preserves list order: the old first replica becomes the new
    // primary, and one live non-owner is appended as the refill target.
    owners.erase(it);
    fill_impl(owners, shard, nimages, cores_per_node, replication, dead);
  }
  return owners;
}

const std::vector<int>& ReplicaMap::owners(std::int64_t shard,
                                           sim::Engine& eng) {
  const auto& declared = eng.declared_failures();
  while (consumed_declared_ < declared.size()) {
    const int pe = declared[consumed_declared_++].pe;
    if (pe < 0 || pe >= n_) continue;
    dead_[static_cast<std::size_t>(pe)] = 1;
    for (std::size_t s = 0; s < owners_.size(); ++s) {
      auto& ow = owners_[s];
      const auto it = std::find(ow.begin(), ow.end(), pe);
      if (it == ow.end()) continue;
      const bool was_primary = it == ow.begin();
      ow.erase(it);
      fill(ow, static_cast<std::int64_t>(s), dead_);
      if (was_primary && !ow.empty()) ++promotions_;
    }
  }
  return owners_[static_cast<std::size_t>(shard)];
}

// ---------------------------------------------------------------------------
// ShardStore
// ---------------------------------------------------------------------------

ShardStore::ShardStore(Runtime& rt, Options opts)
    : rt_(rt),
      o_(opts),
      map_(rt.num_images(), rt.conduit().sw().cores_per_node, opts.replication,
           opts.num_shards) {
  if (o_.slots_per_shard <= 0) {
    throw std::invalid_argument("ShardStore: slots_per_shard <= 0");
  }
  if (o_.slot_bytes == 0) {
    throw std::invalid_argument("ShardStore: slot_bytes == 0");
  }
  if (o_.num_locks <= 0) {
    throw std::invalid_argument("ShardStore: num_locks <= 0");
  }
  const auto ns = static_cast<std::size_t>(o_.num_shards);
  data_off_ = rt_.allocate_coarray_bytes(ns * shard_bytes());
  seq_off_ = rt_.allocate_coarray_bytes(ns * sizeof(std::int64_t));
  synced_off_ = rt_.allocate_coarray_bytes(ns * sizeof(std::int64_t));
  std::memset(rt_.local_addr(data_off_), 0, ns * shard_bytes());
  std::memset(rt_.local_addr(seq_off_), 0, ns * sizeof(std::int64_t));
  // Initial owners hold a trivially complete copy (everything is zero);
  // everyone else starts unsynced and earns the flag through anti-entropy.
  sim::Engine& eng = rt_.conduit().engine();
  const int me0 = rt_.this_image() - 1;
  for (std::int64_t s = 0; s < o_.num_shards; ++s) {
    const auto& ow = map_.owners(s, eng);
    const std::int64_t v =
        std::find(ow.begin(), ow.end(), me0) != ow.end() ? 1 : 0;
    std::memcpy(rt_.local_addr(synced_off_ +
                               static_cast<std::uint64_t>(s) * sizeof(v)),
                &v, sizeof(v));
  }
  locks_.reserve(static_cast<std::size_t>(o_.num_locks));
  for (int i = 0; i < o_.num_locks; ++i) locks_.push_back(rt_.make_lock());
  scratch_.resize(o_.slot_bytes);
  auto& reg = obs::registry();
  c_writes_ = &reg.counter(me0, "repl.writes");
  c_writes_acked_ = &reg.counter(me0, "repl.writes_acked");
  c_write_retries_ = &reg.counter(me0, "repl.write_retries");
  c_write_failures_ = &reg.counter(me0, "repl.write_failures");
  c_chain_puts_ = &reg.counter(me0, "repl.chain_puts");
  c_chain_refences_ = &reg.counter(me0, "repl.chain_refences");
  c_lock_reclaims_ = &reg.counter(me0, "repl.lock_reclaims");
  c_reads_ = &reg.counter(me0, "repl.reads");
  c_read_primary_ = &reg.counter(me0, "repl.read_primary");
  c_read_fallbacks_ = &reg.counter(me0, "repl.read_fallbacks");
  c_read_stale_skips_ = &reg.counter(me0, "repl.read_stale_skips");
  c_read_failures_ = &reg.counter(me0, "repl.read_failures");
  c_ae_pulls_ = &reg.counter(me0, "repl.ae_pulls");
  c_ae_bytes_ = &reg.counter(me0, "repl.ae_bytes");
  c_promotions_ = &reg.counter(me0, "repl.promotions");
  rt_.sync_all();
}

std::int64_t ShardStore::local_seq(std::int64_t shard) {
  std::int64_t v = 0;
  std::memcpy(&v,
              rt_.local_addr(seq_off_ +
                             static_cast<std::uint64_t>(shard) * sizeof(v)),
              sizeof(v));
  return v;
}

std::int64_t ShardStore::local_synced(std::int64_t shard) {
  std::int64_t v = 0;
  std::memcpy(&v,
              rt_.local_addr(synced_off_ +
                             static_cast<std::uint64_t>(shard) * sizeof(v)),
              sizeof(v));
  return v;
}

bool ShardStore::chain_and_fence(const std::vector<int>& owners,
                                 int primary_image, std::uint64_t entry_off,
                                 std::uint64_t seq_cell,
                                 const void* slot_bytes_buf, std::int64_t seq) {
  // A dead *replica* never fails the chain: membership already dropped it
  // from the owner list (or will), and anti-entropy re-replicates. Only a
  // dead primary aborts — the caller must retry at the promoted one.
  for (int round = 0; round < o_.replication + 1; ++round) {
    bool primary_dead = false;
    for (const int pe : owners) {
      const int img = pe + 1;
      if (rt_.image_status(img) != kStatOk) continue;
      try {
        rt_.put_bytes(img, entry_off, slot_bytes_buf, o_.slot_bytes);
        ++*c_chain_puts_;
        if (img != primary_image) {
          rt_.put_bytes(img, seq_cell, &seq, sizeof(seq));
        }
      } catch (const fabric::PeerFailedError&) {
        if (img == primary_image) primary_dead = true;
      }
    }
    if (primary_dead) return false;
    if (rt_.sync_memory_stat() == kStatOk) return true;
    // The fence tripped on a dead peer. Live-target puts still completed
    // (sync_memory_stat's contract); if the primary survived, re-issue to
    // whoever is still standing and fence again so the ack stays honest.
    if (rt_.image_status(primary_image) != kStatOk) return false;
    ++*c_chain_refences_;
  }
  return false;
}

bool ShardStore::update(std::int64_t shard, std::int64_t slot,
                        const std::function<void(void*)>& modify) {
  ++*c_writes_;
  sim::Engine& eng = rt_.conduit().engine();
  const std::uint64_t entry_off =
      data_off_ + static_cast<std::uint64_t>(shard) * shard_bytes() +
      static_cast<std::uint64_t>(slot) * o_.slot_bytes;
  const std::uint64_t seq_cell =
      seq_off_ + static_cast<std::uint64_t>(shard) * sizeof(std::int64_t);
  const CoLock lck = locks_[static_cast<std::size_t>(
      shard % static_cast<std::int64_t>(o_.num_locks))];
  // Each failover consumes at most one attempt per owner generation; +2
  // absorbs the lock-reclaim and stale-cache races.
  const int max_attempts = rt_.num_images() + 2;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) ++*c_write_retries_;
    const auto& owners = map_.owners(shard, eng);
    if (owners.empty()) break;  // every candidate image is dead
    const int primary = owners[0] + 1;
    if (rt_.image_status(primary) != kStatOk) continue;  // stale; re-resolve
    const int lst = rt_.lock_stat(lck, primary);
    if (lst == kStatFailedImage) {
      if (!rt_.holds_lock(lck, primary)) continue;  // lock's home image died
      ++*c_lock_reclaims_;  // reclaimed from a dead holder; we DO hold it
    } else if (lst != kStatOk) {
      break;
    }
    // Sequence + read-modify at the primary, all under the stripe lock.
    bool primary_ok = true;
    std::int64_t seq = 0;
    try {
      seq = rt_.atomic_fetch_add(primary, seq_cell, 1) + 1;
    } catch (const fabric::PeerFailedError&) {
      primary_ok = false;
    }
    if (primary_ok) {
      primary_ok = rt_.get_bytes_stat(scratch_.data(), primary, entry_off,
                                      o_.slot_bytes) == kStatOk;
    }
    if (!primary_ok) {
      (void)rt_.unlock_stat(lck, primary);
      continue;  // primary died under us; retry at the promoted one
    }
    modify(scratch_.data());
    const bool chained = chain_and_fence(owners, primary, entry_off, seq_cell,
                                         scratch_.data(), seq);
    // If the chain fenced clean, the bytes are on every surviving owner —
    // the write is durable even if the primary dies during this unlock.
    (void)rt_.unlock_stat(lck, primary);
    if (!chained) continue;
    ++*c_writes_acked_;
    return true;
  }
  ++*c_write_failures_;
  return false;
}

bool ShardStore::read(void* out, std::int64_t shard, std::int64_t slot) {
  ++*c_reads_;
  sim::Engine& eng = rt_.conduit().engine();
  const std::uint64_t entry_off =
      data_off_ + static_cast<std::uint64_t>(shard) * shard_bytes() +
      static_cast<std::uint64_t>(slot) * o_.slot_bytes;
  const int max_attempts = rt_.num_images() + 2;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const auto& ow = map_.owners(shard, eng);
    if (ow.empty()) break;
    const int primary = ow[0] + 1;
    int src = 0;
    if (rt_.image_status(primary) == kStatOk && !rt_.image_suspect(primary)) {
      src = primary;
      ++*c_read_primary_;
    } else {
      // Primary declared or suspect: serve from the first live replica
      // holding a synced copy. Suspicion is advisory — it only steers
      // reads, never membership.
      for (std::size_t i = 1; i < ow.size(); ++i) {
        const int img = ow[i] + 1;
        if (rt_.image_status(img) != kStatOk || rt_.image_suspect(img)) {
          continue;
        }
        std::int64_t sy = 0;
        const std::uint64_t sy_off =
            synced_off_ + static_cast<std::uint64_t>(shard) * sizeof(sy);
        if (rt_.get_bytes_stat(&sy, img, sy_off, sizeof(sy)) != kStatOk) {
          continue;
        }
        if (sy < 1) {
          ++*c_read_stale_skips_;
          continue;
        }
        src = img;
        ++*c_read_fallbacks_;
        break;
      }
      // No synced replica reachable: a suspect-but-undeclared primary is
      // still the best copy — pay the possible stall rather than miss.
      if (src == 0 && rt_.image_status(primary) == kStatOk) {
        src = primary;
        ++*c_read_primary_;
      }
    }
    if (src == 0) continue;  // owner set mid-transition; re-resolve
    if (rt_.get_bytes_stat(out, src, entry_off, o_.slot_bytes) == kStatOk) {
      return true;
    }
  }
  ++*c_read_failures_;
  return false;
}

bool ShardStore::pull_shard(std::int64_t shard, int lock_image,
                            int src_image) {
  obs::Span sp(obs::Cat::kReplPull, shard_bytes(),
               static_cast<std::uint32_t>(src_image - 1));
  const CoLock lck = locks_[static_cast<std::size_t>(
      shard % static_cast<std::int64_t>(o_.num_locks))];
  const int lst = rt_.lock_stat(lck, lock_image);
  if (lst == kStatFailedImage && !rt_.holds_lock(lck, lock_image)) {
    return false;  // lock home died; caller re-resolves next pass
  }
  if (lst != kStatOk && lst != kStatFailedImage) return false;
  bool ok = false;
  std::int64_t src_seq = 0;
  const std::uint64_t seq_cell =
      seq_off_ + static_cast<std::uint64_t>(shard) * sizeof(src_seq);
  const std::uint64_t shard_off =
      data_off_ + static_cast<std::uint64_t>(shard) * shard_bytes();
  if (rt_.get_bytes_stat(&src_seq, src_image, seq_cell, sizeof(src_seq)) ==
      kStatOk) {
    // Snapshot the whole shard under the writer-excluding stripe lock, then
    // install bytes + seq + synced locally (own-image memory; plain stores).
    std::vector<std::byte> snap(shard_bytes());
    if (rt_.get_bytes_stat(snap.data(), src_image, shard_off, snap.size()) ==
        kStatOk) {
      std::memcpy(rt_.local_addr(shard_off), snap.data(), snap.size());
      std::memcpy(rt_.local_addr(seq_cell), &src_seq, sizeof(src_seq));
      const std::int64_t one = 1;
      std::memcpy(rt_.local_addr(synced_off_ + static_cast<std::uint64_t>(
                                                   shard) *
                                                   sizeof(one)),
                  &one, sizeof(one));
      ++*c_ae_pulls_;
      *c_ae_bytes_ += snap.size();
      ok = true;
    }
  }
  (void)rt_.unlock_stat(lck, lock_image);
  return ok;
}

int ShardStore::anti_entropy(int max_pulls) {
  sim::Engine& eng = rt_.conduit().engine();
  const int me0 = rt_.this_image() - 1;
  // Surface the map's promotion count through the registry as a side
  // effect of the sweep (owners() replays any pending declarations).
  int pulls = 0;
  for (std::int64_t s = 0; s < o_.num_shards && pulls < max_pulls; ++s) {
    const auto& ow = map_.owners(s, eng);
    if (std::find(ow.begin(), ow.end(), me0) == ow.end()) continue;
    if (local_synced(s) >= 1) continue;
    const int primary = ow[0] + 1;
    if (primary != rt_.this_image()) {
      // Replica catching up: pull from the primary under its stripe lock.
      if (rt_.image_status(primary) != kStatOk) continue;
      if (pull_shard(s, primary, primary)) ++pulls;
    } else {
      // Unsynced primary: only possible when every prior owner died before
      // we caught up. Pull from any other synced owner, locking at home
      // (us) so writers are excluded. No synced source => that shard's
      // history is beyond R failures; leave it unsynced rather than lie.
      for (std::size_t i = 1; i < ow.size(); ++i) {
        const int img = ow[i] + 1;
        if (rt_.image_status(img) != kStatOk) continue;
        std::int64_t sy = 0;
        const std::uint64_t sy_off =
            synced_off_ + static_cast<std::uint64_t>(s) * sizeof(sy);
        if (rt_.get_bytes_stat(&sy, img, sy_off, sizeof(sy)) != kStatOk) {
          continue;
        }
        if (sy < 1) continue;
        if (pull_shard(s, rt_.this_image(), img)) {
          ++pulls;
          break;
        }
      }
    }
  }
  *c_promotions_ = map_.promotions();
  return pulls;
}

int ShardStore::under_replicated_local() {
  sim::Engine& eng = rt_.conduit().engine();
  const int me0 = rt_.this_image() - 1;
  int debt = 0;
  for (std::int64_t s = 0; s < o_.num_shards; ++s) {
    const auto& ow = map_.owners(s, eng);
    if (std::find(ow.begin(), ow.end(), me0) == ow.end()) continue;
    if (local_synced(s) < 1) ++debt;
  }
  return debt;
}

}  // namespace caf::repl
