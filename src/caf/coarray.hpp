// caf::Coarray<T> — the typed, user-facing coarray API.
//
// Mirrors Fortran 2008 coarray semantics in embedded-C++ form, driving the
// same runtime entry points an OpenUH-compiled CAF program would:
//
//   Fortran                              this API
//   -------------------------------      ----------------------------------
//   integer :: x(4)[*]                   auto x = make_coarray<int>(rt, {4});
//   x(i) = v                             x(i) = v            (local, 1-based)
//   x(1)[4] = v                          x.put_scalar(4, {1}, v)
//   v = x(3)[4]                          v = x.get_scalar(4, {3})
//   y(:)(...) = x(1:9:2,...)[j]          x.get_section(buf, j, sec)
//   x(1:9:2,...)[j] = ...                x.put_section(j, sec, buf)
//   deallocate(x)                        free_coarray(rt, x)  (collective)
//
// Image indices are 1-based; subscripts are 1-based column-major; sections
// are lo:hi:stride triplets — all exactly as in the paper's examples.
#pragma once

#include <initializer_list>
#include <stdexcept>
#include <vector>

#include "caf/runtime.hpp"
#include "caf/section.hpp"

namespace caf {

template <typename T>
class Coarray {
 public:
  static_assert(std::is_trivially_copyable_v<T>,
                "coarray elements must be trivially copyable");

  Coarray() = default;

  const Shape& shape() const { return shape_; }
  std::int64_t size() const { return shape_.size(); }
  std::uint64_t offset() const { return off_; }
  Runtime& runtime() const { return *rt_; }

  /// Base of this image's local coarray storage.
  T* data() { return reinterpret_cast<T*>(rt_->local_addr(off_)); }
  const T* data() const {
    return reinterpret_cast<const T*>(rt_->local_addr(off_));
  }

  /// Local 1-based element access: x(i, j, k).
  template <typename... Subs>
  T& operator()(Subs... subs) {
    return data()[shape_.linear_index({static_cast<std::int64_t>(subs)...})];
  }
  template <typename... Subs>
  const T& operator()(Subs... subs) const {
    return data()[shape_.linear_index({static_cast<std::int64_t>(subs)...})];
  }

  // ---- co-indexed scalar access: x(subs)[image] ----
  T get_scalar(int image, std::initializer_list<std::int64_t> subs) const {
    T v{};
    rt_->get_bytes(&v, image,
                   off_ + static_cast<std::uint64_t>(shape_.linear_index(subs)) *
                              sizeof(T),
                   sizeof(T));
    return v;
  }
  void put_scalar(int image, std::initializer_list<std::int64_t> subs, T v) {
    rt_->put_bytes(image,
                   off_ + static_cast<std::uint64_t>(shape_.linear_index(subs)) *
                              sizeof(T),
                   &v, sizeof(T));
  }

  // ---- co-indexed contiguous block access (whole-array or prefix) ----
  void put_contiguous(int image, const T* src, std::size_t nelems,
                      std::int64_t first_elem = 0) {
    rt_->put_bytes(image,
                   off_ + static_cast<std::uint64_t>(first_elem) * sizeof(T),
                   src, nelems * sizeof(T));
  }
  void get_contiguous(T* dst, int image, std::size_t nelems,
                      std::int64_t first_elem = 0) const {
    rt_->get_bytes(dst, image,
                   off_ + static_cast<std::uint64_t>(first_elem) * sizeof(T),
                   nelems * sizeof(T));
  }

  // ---- co-indexed section access (§IV-C strided algorithms) ----
  /// x(sec)[image] = src_packed — src in section order, column-major.
  StridedStats put_section(int image, const Section& sec,
                           const T* src_packed) {
    return rt_->put_strided(image, off_, sizeof(T), describe(shape_, sec),
                            src_packed);
  }
  /// dst_packed = x(sec)[image].
  StridedStats get_section(T* dst_packed, int image, const Section& sec) const {
    return rt_->get_strided(dst_packed, image, off_, sizeof(T),
                            describe(shape_, sec));
  }

  /// Local section gather/scatter (no communication; used by tests and by
  /// halo packing).
  void pack_local(T* dst_packed, const Section& sec) const {
    const SectionDesc d = describe(shape_, sec);
    const auto elems = linear_elements(d);
    const T* base = data();
    for (std::size_t i = 0; i < elems.size(); ++i) dst_packed[i] = base[elems[i]];
  }
  void unpack_local(const Section& sec, const T* src_packed) {
    const SectionDesc d = describe(shape_, sec);
    const auto elems = linear_elements(d);
    T* base = data();
    for (std::size_t i = 0; i < elems.size(); ++i) base[elems[i]] = src_packed[i];
  }

 private:
  template <typename U>
  friend Coarray<U> make_coarray(Runtime&, Shape);
  template <typename U>
  friend void free_coarray(Runtime&, Coarray<U>&);

  Runtime* rt_ = nullptr;
  std::uint64_t off_ = 0;
  Shape shape_;
};

/// Remote section-to-section assignment:
///   dst(dst_sec)[image] = src(src_sec)
/// where `src` is the caller's local coarray (or the same coarray). The two
/// sections must select the same number of elements; the source is packed
/// locally and shipped with the configured strided algorithm.
template <typename T>
StridedStats copy_section(Coarray<T>& dst, int image, const Section& dst_sec,
                          const Coarray<T>& src, const Section& src_sec) {
  const SectionDesc sd = describe(src.shape(), src_sec);
  const SectionDesc dd = describe(dst.shape(), dst_sec);
  if (sd.total != dd.total) {
    throw std::invalid_argument("copy_section: section sizes differ");
  }
  std::vector<T> packed(static_cast<std::size_t>(sd.total));
  src.pack_local(packed.data(), src_sec);
  return dst.put_section(image, dst_sec, packed.data());
}

/// Remote section fetch into a local section:
///   dst(dst_sec) = src(src_sec)[image]
template <typename T>
StridedStats copy_section_from(Coarray<T>& dst, const Section& dst_sec,
                               const Coarray<T>& src, int image,
                               const Section& src_sec) {
  const SectionDesc sd = describe(src.shape(), src_sec);
  const SectionDesc dd = describe(dst.shape(), dst_sec);
  if (sd.total != dd.total) {
    throw std::invalid_argument("copy_section_from: section sizes differ");
  }
  std::vector<T> packed(static_cast<std::size_t>(sd.total));
  const StridedStats stats = src.get_section(packed.data(), image, src_sec);
  dst.unpack_local(dst_sec, packed.data());
  return stats;
}

/// Collective coarray allocation (CAF `allocate(x(shape)[*])` — Table II
/// maps this onto shmalloc).
template <typename T>
Coarray<T> make_coarray(Runtime& rt, Shape shape) {
  Coarray<T> c;
  c.rt_ = &rt;
  c.shape_ = shape;
  c.off_ = rt.allocate_coarray_bytes(
      static_cast<std::size_t>(shape.size()) * sizeof(T));
  return c;
}

/// Collective deallocation (CAF `deallocate` → shfree).
template <typename T>
void free_coarray(Runtime& rt, Coarray<T>& c) {
  rt.deallocate_coarray_bytes(c.off_);
  c.rt_ = nullptr;
  c.off_ = 0;
}

/// Typed atomic cell: a Coarray<int64> of one element with the atomic_*
/// intrinsics attached (atomic_define/ref/cas/fetch_add — Table II).
class AtomicCell {
 public:
  explicit AtomicCell(Runtime& rt)
      : rt_(&rt), off_(rt.allocate_coarray_bytes(sizeof(std::int64_t))) {
    std::memset(rt.local_addr(off_), 0, sizeof(std::int64_t));
    rt.conduit().barrier();
  }
  std::uint64_t offset() const { return off_; }
  void define(int image, std::int64_t v) { rt_->atomic_define(image, off_, v); }
  std::int64_t ref(int image) { return rt_->atomic_ref(image, off_); }
  std::int64_t fetch_add(int image, std::int64_t v) {
    return rt_->atomic_fetch_add(image, off_, v);
  }
  std::int64_t cas(int image, std::int64_t cond, std::int64_t val) {
    return rt_->atomic_cas(image, off_, cond, val);
  }
  std::int64_t fetch_and(int image, std::int64_t m) {
    return rt_->atomic_fetch_and(image, off_, m);
  }
  std::int64_t fetch_or(int image, std::int64_t m) {
    return rt_->atomic_fetch_or(image, off_, m);
  }
  std::int64_t fetch_xor(int image, std::int64_t m) {
    return rt_->atomic_fetch_xor(image, off_, m);
  }

 private:
  Runtime* rt_;
  std::uint64_t off_;
};

}  // namespace caf
