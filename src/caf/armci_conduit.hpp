// ArmciConduit — UHCAF over ARMCI (the runtime's other conduit, Table I).
//
// Mapping notes versus the SHMEM and GASNet conduits:
//
//   * 1-D strided RMA maps to ARMCI_PutS/GetS with one stride level — the
//     library aggregates the runs in software (pipelined injections), so it
//     behaves between MVAPICH2-X SHMEM's blocking-put loop and a hardware
//     scatter;
//   * ARMCI_Rmw provides only fetch-add and swap natively; compare-and-swap
//     and the bitwise atomics are emulated inside a conduit-internal ARMCI
//     mutex hosted on the target process. This keeps the MCS lock (which
//     needs cswap on release) correct over ARMCI, at an honest extra cost —
//     which is part of why the paper's OpenSHMEM port is attractive;
//   * allocation maps to the collective ARMCI_Malloc.
#pragma once

#include <vector>

#include "armci/armci.hpp"
#include "caf/conduit.hpp"

namespace caf {

class ArmciConduit final : public Conduit {
 public:
  explicit ArmciConduit(armci::World& world);

  int rank() const override { return world_.me(); }
  int nranks() const override { return world_.nproc(); }
  std::byte* segment(int rank) override { return world_.base(rank); }
  std::size_t segment_bytes() const override { return seg_bytes_; }
  const net::SwProfile& sw() const override { return world_.domain().sw(); }
  sim::Engine& engine() override { return world_.engine(); }
  bool hw_strided() const override { return false; }
  bool native_amo() const override { return false; }

  void post_init() override {
    if (rmw_mutex_ < 0) {
      world_.create_mutexes(1);
      rmw_mutex_ = 0;
    }
  }

  std::uint64_t allocate(std::size_t bytes) override {
    return world_.malloc_collective(bytes);
  }
  void deallocate(std::uint64_t offset) override {
    world_.free_collective(offset);
  }

  void poke(int rank, std::uint64_t off, const void* src, std::size_t n,
            sim::Time t) override {
    world_.domain().poke(rank, off, src, n, t);
  }

  // ARMCI_Rmw only offers fetch-add and swap. The CAF runtime mixes swap,
  // fetch-add, and compare-swap on the SAME words (the MCS tail), and a
  // native Rmw is not atomic with respect to a mutex-emulated one — so ALL
  // conduit atomics are serialized through the per-process emulation mutex.
  // This honest cost is part of why the paper prefers OpenSHMEM's AMO set.
  std::int64_t do_amo_swap(int rank, std::uint64_t off, std::int64_t v) override {
    return emulated_rmw(rank, off, [v](std::int64_t) { return v; });
  }
  std::int64_t do_amo_fadd(int rank, std::uint64_t off, std::int64_t v) override {
    return emulated_rmw(rank, off, [v](std::int64_t old) { return old + v; });
  }
  std::int64_t do_amo_cswap(int rank, std::uint64_t off, std::int64_t cond,
                         std::int64_t v) override;
  std::int64_t do_amo_fand(int rank, std::uint64_t off, std::int64_t m) override {
    return emulated_rmw(rank, off, [m](std::int64_t v) { return v & m; });
  }
  std::int64_t do_amo_for(int rank, std::uint64_t off, std::int64_t m) override {
    return emulated_rmw(rank, off, [m](std::int64_t v) { return v | m; });
  }
  std::int64_t do_amo_fxor(int rank, std::uint64_t off, std::int64_t m) override {
    return emulated_rmw(rank, off, [m](std::int64_t v) { return v ^ m; });
  }

  void wait_until(std::uint64_t off, Cmp cmp, std::int64_t value) override;
  void do_barrier() override { world_.barrier(); }

  bool direct_reachable(int target) override {
    return node_transport_reachable(target);
  }

  fabric::Domain* rma_domain() override { return &world_.domain(); }

  armci::World& world() { return world_; }

 protected:
  void do_put(int rank, std::uint64_t dst_off, const void* src, std::size_t n,
              bool nbi) override {
    if (nbi) {
      world_.nb_put(rank, dst_off, src, n);
    } else {
      world_.put(rank, dst_off, src, n);
    }
  }
  void do_get(void* dst, int rank, std::uint64_t src_off,
              std::size_t n) override {
    world_.get(dst, rank, src_off, n);
  }
  void do_iput(int rank, std::uint64_t dst_off, std::ptrdiff_t dst_stride,
               const void* src, std::ptrdiff_t src_stride,
               std::size_t elem_bytes, std::size_t nelems) override {
    armci::StridedDesc d;
    d.stride_levels = 1;
    d.counts[0] = static_cast<std::int64_t>(elem_bytes);
    d.counts[1] = static_cast<std::int64_t>(nelems);
    d.src_strides[0] = src_stride * static_cast<std::ptrdiff_t>(elem_bytes);
    d.dst_strides[0] = dst_stride * static_cast<std::ptrdiff_t>(elem_bytes);
    world_.puts(rank, dst_off, src, d);
  }
  void do_iget(void* dst, std::ptrdiff_t dst_stride, int rank,
               std::uint64_t src_off, std::ptrdiff_t src_stride,
               std::size_t elem_bytes, std::size_t nelems) override {
    armci::StridedDesc d;
    d.stride_levels = 1;
    d.counts[0] = static_cast<std::int64_t>(elem_bytes);
    d.counts[1] = static_cast<std::int64_t>(nelems);
    d.src_strides[0] = src_stride * static_cast<std::ptrdiff_t>(elem_bytes);
    d.dst_strides[0] = dst_stride * static_cast<std::ptrdiff_t>(elem_bytes);
    world_.gets(dst, rank, src_off, d);
  }
  void do_put_scatter(int rank, const fabric::ScatterRec* recs,
                      std::size_t nrecs, const void* payload,
                      std::size_t payload_bytes) override {
    world_.putv(rank, recs, nrecs, payload, payload_bytes);
  }
  void do_quiet() override { world_.all_fence(); }

 private:
  /// Generic mutex-protected read-modify-write for the ops ARMCI_Rmw lacks.
  std::int64_t emulated_rmw(int rank, std::uint64_t off,
                            const std::function<std::int64_t(std::int64_t)>& f);

  armci::World& world_;
  std::size_t seg_bytes_;
  int rmw_mutex_ = -1;  // conduit-internal mutex index (one per process)
};

}  // namespace caf
