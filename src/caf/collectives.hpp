// Topology-aware hierarchical collectives engine.
//
// The paper builds CAF collectives from one-sided puts + flag waits
// (footnote 1) or maps them to the conduit's native calls (Table II). This
// engine replaces the runtime's ad-hoc binomial trees with a family of
// algorithms that exploit the node map derivable from SwProfile::
// cores_per_node:
//
//   * kFlat              — root-centric reference (linear fan-out / linear
//                          gather-combine); the conformance baseline.
//   * kBinomial          — classic binomial tree over all images (the
//                          pre-engine algorithm, kept as an arm).
//   * kTwoLevel          — node-leader hierarchy: intra-node stage over
//                          shmem_ptr-class direct copies when the conduit
//                          reports direct_reachable(), k-nomial tree across
//                          node leaders for the inter-node stage.
//   * kRecursiveDoubling — allreduce without a root for small payloads
//                          (log2 P rounds instead of reduce + broadcast).
//   * kPipelined         — segmented streaming through a contiguous binary
//                          tree with ack-window flow control, for payloads
//                          larger than one staging slot.
//
// kAuto picks per call by pricing the candidate trees off the SwProfile
// (latency/overhead/bandwidth), the same way the §VII strided planner
// prices its transfer plans.
//
// Correctness notes:
//   * All arms combine in ascending image order (a binomial receiver merges
//     the contiguous block [me+mask, me+2*mask); recursive doubling merges
//     index-order-aware), so non-commutative but associative reductions get
//     the same rank-order fold from every arm.
//   * Data-then-flag put pairs rely on the transport's in-order same-pair
//     delivery; per_target_completion=false restores the pre-engine
//     quiet-between-puts sequence for A/B measurement.
//   * Broadcast staging slots form a ring of kBcBanks generation banks.
//     Successive generations land in distinct cells, and a bank is only
//     reused W generations later, after an engine barrier has proven every
//     image consumed it (a producer with no receives — a broadcast root —
//     can otherwise stream arbitrarily far ahead of a lagging consumer and
//     overwrite a slot it has not read yet). The window barrier runs at
//     most once per kBcBanks generations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "caf/conduit.hpp"

namespace caf {

/// Failure-aware distribution tree over an arbitrary live-member set,
/// rebuilt whenever the engine's cached membership epoch moves. Node
/// leaders (the first live member on each node) form a radix-R tree rooted
/// at the broadcast root's leader; the remaining members on a node hang off
/// their leader. Edges are indexed by absolute 0-based rank so a dead
/// member simply has no edges.
struct TreePlan {
  std::uint64_t epoch = ~std::uint64_t{0};  ///< membership epoch built for
  int root = -1;                            ///< 0-based root rank
  std::vector<int> members;                 ///< live ranks, ascending
  std::vector<int> parent;                  ///< by rank; -1 = root/non-member
  std::vector<std::vector<int>> children;   ///< by rank
  bool contains(int rank) const {
    return rank >= 0 && rank < static_cast<int>(parent.size()) &&
           (parent[static_cast<std::size_t>(rank)] >= 0 || rank == root);
  }
};

enum class CollAlgo {
  kAuto,
  kFlat,
  kBinomial,
  kTwoLevel,
  kRecursiveDoubling,
  kPipelined,
};

/// Tuning for the hierarchical collectives engine.
struct CollOptions {
  CollAlgo broadcast = CollAlgo::kAuto;  ///< force a broadcast arm
  CollAlgo reduce = CollAlgo::kAuto;     ///< force a reduction arm
  int knomial_radix = 4;                 ///< inter-node leader-tree radix
  std::size_t rd_max_bytes = 2048;       ///< recursive-doubling payload cap
  std::size_t pipe_chunk = 8192;         ///< pipelined segment size
  int pipe_depth = 4;                    ///< in-flight segments per tree edge
  /// Data put followed by flag put with no quiet between them (per-target
  /// completion via in-order same-pair delivery). False restores the
  /// pre-engine put+quiet+flag sequence — the ablation baseline.
  bool per_target_completion = true;
  /// Use the node map at all; false treats the machine as flat (every image
  /// its own node), which disables the two-level arms.
  bool hierarchical = true;
};

/// Per-image engine counters (tests/benches verify the message-locality and
/// pipelining claims with these).
struct CollTelemetry {
  std::uint64_t broadcasts = 0;
  std::uint64_t reductions = 0;
  std::uint64_t barriers = 0;
  std::uint64_t inter_node_msgs = 0;  ///< data/flag puts that crossed nodes
  std::uint64_t intra_node_msgs = 0;  ///< puts that stayed on the node
  std::uint64_t direct_intra_msgs = 0;///< intra puts the conduit can ld/st
  std::uint64_t chunks_pipelined = 0; ///< segments streamed up/down trees
  std::uint64_t team_plan_rebuilds = 0;///< tree plans rebuilt (epoch moved /
                                       ///< membership changed)
};

class CollectiveEngine {
 public:
  CollectiveEngine(Conduit& conduit, const CollOptions& opts)
      : conduit_(conduit), opts_(opts) {}

  /// Collective: allocates the engine's symmetric staging areas. Every image
  /// must call in the same program order relative to other allocations.
  void init();

  /// Whole-payload broadcast from 0-based `root0`; the engine owns chunking
  /// and, above pipe_chunk, pipelining.
  void broadcast(void* data, std::size_t nbytes, int root0);

  /// Whole-payload allreduce; `comb(a, b)` folds one element `b` into `a`
  /// and every arm applies it in ascending image order.
  void allreduce(void* data, std::size_t nelems, std::size_t elem,
                 const std::function<void(void*, const void*)>& comb);

  /// Hierarchical dissemination barrier: intra-node counter gather at the
  /// leader, dissemination rounds across leaders only, intra-node release.
  void barrier();

  // ---- node map (ranks are node-contiguous in the fabric) ----
  int node_of(int rank) const { return rank / node_size_; }
  int leader_of(int rank) const { return node_of(rank) * node_size_; }
  int num_nodes() const { return num_nodes_; }
  int node_size() const { return node_size_; }
  int node_members(int node) const {
    const int base = node * node_size_;
    return std::min(node_size_, n_ - base);
  }

  // ---- selector (exposed so tests/benches can check the pricing) ----
  CollAlgo pick_broadcast(std::size_t nbytes) const;
  CollAlgo pick_reduce(std::size_t nbytes) const;

  /// Tree plan over `members` (live 0-based ranks, ascending) rooted at
  /// `root0`, for membership epoch `epoch`. Cached per calling rank and
  /// rebuilt only when the epoch, root, or member set changes — so a
  /// post-kill collective re-forms the node map and leader tree once, and a
  /// healed partition (whose far-side ranks were declared) keeps the
  /// re-formed survivor tree. A root absent from `members` yields an
  /// edge-free plan (callers fall back to their flat path).
  const TreePlan& plan_for(const std::vector<int>& members, int root0,
                           std::uint64_t epoch);

  const CollOptions& options() const { return opts_; }
  const CollTelemetry& telemetry() { return state().tele; }

  /// Staging granularity of the non-pipelined arms (one slot bank).
  static constexpr std::size_t kSlotBytes = 8192;
  /// Broadcast-slot ring depth == generations allowed between window
  /// barriers (see next_bc_gen()).
  static constexpr int kBcBanks = 8;

 private:
  struct PerRank {
    std::int64_t gen = 0;       ///< collective generation (flag values)
    std::int64_t bar_gen = 0;   ///< barrier generation
    std::int64_t flat_calls = 0;///< flat-reduce gather rounds completed
    std::int64_t win_base = 0;  ///< gen proven globally complete (barrier)
    TreePlan team_plan;         ///< cached failure-aware tree (plan_for)
    CollTelemetry tele;
  };

  int me() const { return conduit_.rank(); }
  PerRank& state() { return per_rank_[static_cast<std::size_t>(me())]; }
  std::byte* local(std::uint64_t off) {
    return conduit_.segment(me()) + off;
  }
  std::int64_t next_gen() { return ++state().gen; }

  static int ceil_log2(int x);

  // Cost model (selector pricing off the SwProfile).
  double inter_hop(std::size_t nbytes) const;
  double intra_hop(std::size_t nbytes) const;

  /// Data put then flag put to `target`; no quiet between them when
  /// per_target_completion (in-order same-pair delivery sequences them),
  /// the pre-engine put+quiet+flag otherwise. Counts locality telemetry.
  void send_payload(int target, std::uint64_t slot_off, const void* src,
                    std::size_t n, std::uint64_t flag_off, std::int64_t gen);
  void put_i64(int target, std::uint64_t off, std::int64_t v);
  void count_msg(int target, std::size_t n);
  void wait_ge(std::uint64_t off, std::int64_t v) {
    obs::Span sp(obs::Cat::kCollStage);
    conduit_.wait_until(off, Cmp::kGe, v);
  }
  void combine_buf(void* a, const void* b, std::size_t nelems,
                   std::size_t elem,
                   const std::function<void(void*, const void*)>& comb);

  /// Generation for a bcast-slot chunk. Runs the engine barrier first when
  /// the new generation would reuse a ring bank (gen - win_base reaching
  /// kBcBanks): the barrier proves every image consumed the old occupant,
  /// so no producer can overrun a consumer by a full ring. Uniform across
  /// images (gen counters advance identically), hence collective-safe.
  std::int64_t next_bc_gen();

  // ---- broadcast arms (payload <= kSlotBytes per call) ----
  void bcast_flat(void* data, std::size_t nbytes, int root0,
                  std::int64_t gen);
  void bcast_binomial(void* data, std::size_t nbytes, int root0,
                      std::int64_t gen);
  void bcast_two_level(void* data, std::size_t nbytes, int root0,
                       std::int64_t gen);

  /// Binomial fan-out within the calling image's node, rooted at
  /// `local_root` (a member of the same node). The root's payload must
  /// already be staged in the generation's bcast slot bank; every other
  /// member waits, forwards, and copies out into `data`.
  void node_fanout(int local_root, void* data, std::size_t nbytes,
                   std::int64_t gen);

  // ---- reduction arms ----
  void reduce_flat(void* data, std::size_t nelems, std::size_t elem,
                   const std::function<void(void*, const void*)>& comb,
                   std::int64_t gen);
  void reduce_binomial(void* data, std::size_t nelems, std::size_t elem,
                       const std::function<void(void*, const void*)>& comb,
                       std::int64_t gen);
  void reduce_two_level(void* data, std::size_t nelems, std::size_t elem,
                        const std::function<void(void*, const void*)>& comb,
                        std::int64_t gen);
  /// Recursive-doubling allreduce over `group` (ascending ranks); `gi` is
  /// the caller's index. Non-power-of-two sizes pre-fold adjacent pairs so
  /// every survivor covers a contiguous index block, then send the result
  /// back at the end. Rank-order-aware: the lower-indexed side always
  /// contributes the left operand.
  void rd_allreduce(const std::vector<int>& group, int gi, void* data,
                    std::size_t nelems, std::size_t elem,
                    const std::function<void(void*, const void*)>& comb,
                    std::int64_t gen);

  // ---- pipelined arms (payload > pipe_chunk) ----
  /// Contiguous-range binary tree: subtree over [lo,hi] is rooted at lo,
  /// children cover [lo+1,mid] and [mid+1,hi]. Ranges are contiguous, so
  /// subtrees cluster on nodes (ranks are node-contiguous) and a parent
  /// combines children in ascending-rank order.
  struct BinTree {
    int parent = -1;
    int child[2] = {-1, -1};
    int nchild = 0;
    int my_slot = 0;  ///< which child of the parent this vrank is
  };
  static BinTree bin_tree(int vrank, int n);
  void pipe_bcast(void* data, std::size_t nbytes, int root0,
                  std::int64_t gen);
  void pipe_allreduce(void* data, std::size_t nelems, std::size_t elem,
                      const std::function<void(void*, const void*)>& comb,
                      std::int64_t gen);

  // k-nomial leader tree helpers (indices into the rotated leader list).
  std::vector<int> knomial_children(int v, int count) const;
  int knomial_parent(int v) const;

  std::uint64_t bc_slot(std::int64_t gen) const {
    return bc_slot_off_ +
           static_cast<std::uint64_t>(gen % kBcBanks) * kSlotBytes;
  }
  std::uint64_t bc_flag(std::int64_t gen) const {
    return bc_flag_off_ + static_cast<std::uint64_t>(gen % kBcBanks) * 8;
  }
  std::uint64_t tree_slot(int level) const {
    return tree_slot_off_ + static_cast<std::uint64_t>(level) * kSlotBytes;
  }
  std::uint64_t tree_flag(int level) const {
    return tree_flag_off_ + static_cast<std::uint64_t>(level) * 8;
  }
  std::uint64_t gather_slot(int idx) const {
    return gather_slot_off_ +
           static_cast<std::uint64_t>(idx) * opts_.rd_max_bytes;
  }
  std::uint64_t gather_flag(int idx) const {
    return gather_flag_off_ + static_cast<std::uint64_t>(idx) * 8;
  }
  std::uint64_t rd_slot(int r) const {
    return rd_slot_off_ + static_cast<std::uint64_t>(r) * opts_.rd_max_bytes;
  }
  std::uint64_t rd_flag(int r) const {
    return rd_flag_off_ + static_cast<std::uint64_t>(r) * 8;
  }
  std::uint64_t pd_bank(int slot) const {
    return pd_bank_off_ + static_cast<std::uint64_t>(slot) * opts_.pipe_chunk;
  }
  std::uint64_t pu_bank(int child, int slot) const {
    return pu_bank_off_ +
           (static_cast<std::uint64_t>(child) *
                static_cast<std::uint64_t>(opts_.pipe_depth) +
            static_cast<std::uint64_t>(slot)) *
               opts_.pipe_chunk;
  }

  Conduit& conduit_;
  CollOptions opts_;

  int n_ = 0;
  int node_size_ = 1;
  int num_nodes_ = 1;
  int levels_ = 1;      ///< ceil(log2(num images))
  int rd_rounds_ = 1;   ///< slots provisioned for recursive doubling

  // Symmetric staging areas (offsets identical on every image).
  std::uint64_t bc_slot_off_ = 0;    ///< kBcBanks ring of broadcast slots
  std::uint64_t bc_flag_off_ = 0;    ///< kBcBanks ring of broadcast flags
  std::uint64_t tree_slot_off_ = 0;  ///< per-level binomial-reduce slots
  std::uint64_t tree_flag_off_ = 0;
  std::uint64_t gather_slot_off_ = 0;///< per-member intra-node gather slots
  std::uint64_t gather_flag_off_ = 0;
  std::uint64_t rd_slot_off_ = 0;    ///< per-round recursive-doubling slots
  std::uint64_t rd_flag_off_ = 0;
  std::uint64_t flat_ctr_off_ = 0;   ///< flat-reduce arrival counter
  std::uint64_t bar_cells_off_ = 0;  ///< leader dissemination round cells
  std::uint64_t bar_gather_off_ = 0; ///< intra-node barrier arrival counter
  std::uint64_t bar_release_off_ = 0;///< intra-node barrier release flag
  std::uint64_t pd_bank_off_ = 0;    ///< down-stream (broadcast) chunk banks
  std::uint64_t pd_flag_off_ = 0;    ///< down-stream chunk counter
  std::uint64_t pd_ack_off_ = 0;     ///< per-child down-stream ack cells (2)
  std::uint64_t pu_bank_off_ = 0;    ///< up-stream (reduce) per-child banks
  std::uint64_t pu_flag_off_ = 0;    ///< per-child up-stream chunk counters
  std::uint64_t pu_ack_off_ = 0;     ///< up-stream ack cell (from parent)

  std::vector<PerRank> per_rank_;
};

}  // namespace caf
