#include "caf/section.hpp"

namespace caf {

Shape::Shape(std::initializer_list<std::int64_t> extents) {
  if (extents.size() > kMaxDims) {
    throw std::invalid_argument("Shape: rank exceeds kMaxDims");
  }
  for (std::int64_t e : extents) {
    if (e < 0) throw std::invalid_argument("Shape: negative extent");
    extents_[rank_++] = e;
  }
}

std::int64_t Shape::size() const {
  std::int64_t s = 1;
  for (int d = 0; d < rank_; ++d) s *= extents_[d];
  return rank_ == 0 ? 1 : s;
}

std::int64_t Shape::dim_stride(int dim) const {
  std::int64_t s = 1;
  for (int d = 0; d < dim; ++d) s *= extents_[d];
  return s;
}

std::int64_t Shape::linear_index(
    std::initializer_list<std::int64_t> subs) const {
  if (static_cast<int>(subs.size()) != rank_) {
    throw std::invalid_argument("linear_index: rank mismatch");
  }
  std::int64_t idx = 0;
  int d = 0;
  for (std::int64_t s : subs) {
    if (s < 1 || s > extents_[d]) {
      throw std::out_of_range("linear_index: subscript out of bounds");
    }
    idx += (s - 1) * dim_stride(d);
    ++d;
  }
  return idx;
}

Section::Section(std::initializer_list<Triplet> dims) {
  if (dims.size() > kMaxDims) {
    throw std::invalid_argument("Section: rank exceeds kMaxDims");
  }
  for (const Triplet& t : dims) dims_[rank_++] = t;
}

std::int64_t Section::count() const {
  std::int64_t c = 1;
  for (int d = 0; d < rank_; ++d) c *= dims_[d].count();
  return rank_ == 0 ? 1 : c;
}

void Section::validate(const Shape& shape) const {
  if (rank_ != shape.rank()) {
    throw std::invalid_argument("Section: rank does not match shape");
  }
  for (int d = 0; d < rank_; ++d) {
    const Triplet& t = dims_[d];
    if (t.stride <= 0) throw std::invalid_argument("Section: stride must be > 0");
    if (t.lo < 1 || t.hi > shape.extent(d)) {
      throw std::out_of_range("Section: triplet outside array bounds");
    }
  }
}

Section Section::all(const Shape& shape) {
  Section s;
  s.rank_ = shape.rank();
  for (int d = 0; d < shape.rank(); ++d) {
    s.dims_[d] = Triplet{1, shape.extent(d), 1};
  }
  return s;
}

SectionDesc describe(const Shape& shape, const Section& sec) {
  sec.validate(shape);
  SectionDesc d;
  d.rank = sec.rank();
  d.total = 1;
  for (int i = 0; i < d.rank; ++i) {
    const Triplet& t = sec.dim(i);
    d.count[i] = t.count();
    d.elem_stride[i] = t.stride * shape.dim_stride(i);
    d.first_elem += (t.lo - 1) * shape.dim_stride(i);
    d.total *= d.count[i];
  }
  if (d.rank == 0) {
    d.total = 1;
    d.count[0] = 1;
    d.elem_stride[0] = 1;
    d.rank = 1;
  }
  return d;
}

std::vector<std::int64_t> linear_elements(const SectionDesc& d) {
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(d.total));
  std::array<std::int64_t, kMaxDims> idx{};
  for (std::int64_t n = 0; n < d.total; ++n) {
    std::int64_t lin = d.first_elem;
    for (int dim = 0; dim < d.rank; ++dim) lin += idx[dim] * d.elem_stride[dim];
    out.push_back(lin);
    for (int dim = 0; dim < d.rank; ++dim) {
      if (++idx[dim] < d.count[dim]) break;
      idx[dim] = 0;
    }
  }
  return out;
}

}  // namespace caf
