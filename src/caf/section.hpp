// Fortran-style array shapes and sections for coarrays.
//
// CAF arrays are column-major with (by default) 1-based inclusive bounds.
// A Section selects a rectangular sub-array with one triplet lo:hi:stride
// per dimension, exactly like `a(1:100:2, 1:80:2, 1:100:4)` in the paper's
// §IV-C example. SectionDesc flattens a Section against a Shape into the
// per-dimension byte strides and element counts that the strided transfer
// algorithms consume.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <vector>

namespace caf {

inline constexpr int kMaxDims = 7;  // Fortran 2008 rank limit for coarrays

/// Array extents, column-major storage, 1-based indexing.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> extents);

  int rank() const { return rank_; }
  std::int64_t extent(int dim) const { return extents_[dim]; }
  std::int64_t size() const;

  /// Element stride (in elements) of dimension `dim` in column-major order.
  std::int64_t dim_stride(int dim) const;

  /// Linear element index (0-based) of a 1-based subscript tuple.
  std::int64_t linear_index(std::initializer_list<std::int64_t> subs) const;

 private:
  int rank_ = 0;
  std::array<std::int64_t, kMaxDims> extents_{};
};

/// One dimension of a section: lo:hi:stride, 1-based and inclusive.
struct Triplet {
  std::int64_t lo = 1;
  std::int64_t hi = 1;
  std::int64_t stride = 1;

  std::int64_t count() const {
    if (stride <= 0) throw std::invalid_argument("Triplet: stride must be > 0");
    if (hi < lo) return 0;
    return (hi - lo) / stride + 1;
  }
};

/// A rectangular section of an array (one triplet per dimension).
class Section {
 public:
  Section() = default;
  Section(std::initializer_list<Triplet> dims);

  int rank() const { return rank_; }
  const Triplet& dim(int d) const { return dims_[d]; }
  std::int64_t count() const;  // total selected elements

  /// Validates against a shape (each triplet within bounds, ranks match).
  void validate(const Shape& shape) const;

  /// The full section of `shape` (every element).
  static Section all(const Shape& shape);

 private:
  int rank_ = 0;
  std::array<Triplet, kMaxDims> dims_{};
};

/// A section flattened against a shape: per-dimension selected-element
/// counts and the stride *in elements of the underlying array* between
/// consecutive selected elements; plus the linear element offset of the
/// section's first element. This is the input to the strided algorithms.
struct SectionDesc {
  int rank = 0;
  std::int64_t first_elem = 0;                      // 0-based linear offset
  std::array<std::int64_t, kMaxDims> count{};       // selected per dim
  std::array<std::int64_t, kMaxDims> elem_stride{}; // array elems between picks
  std::int64_t total = 0;

  /// True when the selected elements of dimension 0 are contiguous in
  /// memory (stride 1 in a column-major innermost dimension) — the
  /// "matrix-oriented" case of the Himeno discussion (§V-D).
  bool dim0_contiguous() const { return rank > 0 && elem_stride[0] == 1; }
};

SectionDesc describe(const Shape& shape, const Section& sec);

/// Enumerates the 0-based linear element indices of a section in Fortran
/// (column-major) order. Used by tests and by the packing helpers.
std::vector<std::int64_t> linear_elements(const SectionDesc& d);

}  // namespace caf
