// Multi-dimensional strided RMA (§IV-C): the naive algorithm and the
// paper's 2dim_strided algorithm.
//
// Host-side data is packed in section order (column-major over the selected
// elements); the remote side is described by a SectionDesc against the
// coarray's shape.
//
//   naive        — walk every index tuple; transfer one contiguous run per
//                  innermost (dim 0) segment: a single putmem/getmem when
//                  dim 0 of the section is contiguous (the matrix-oriented
//                  case that §V-D shows favours naive), else one
//                  putmem/getmem per element, exactly the 50*40*25-call
//                  behaviour of the paper's example.
//   2dim_strided — pick base_dim ∈ {0, 1} with the most strided elements
//                  (the paper restricts the choice to the first two
//                  dimensions to respect data locality), then issue one 1-D
//                  shmem_iput/iget per remaining index tuple. For the
//                  example this reduces 50*40*25 calls to 1*40*25.
#include <array>
#include <cstddef>

#include "caf/runtime.hpp"

namespace caf {

namespace {

/// Packed (host-buffer) element strides of a section: contiguous column-
/// major over the selected counts.
std::array<std::int64_t, kMaxDims> packed_strides(const SectionDesc& d) {
  std::array<std::int64_t, kMaxDims> ps{};
  std::int64_t s = 1;
  for (int dim = 0; dim < d.rank; ++dim) {
    ps[dim] = s;
    s *= d.count[dim];
  }
  return ps;
}

/// Chooses the 2dim_strided base dimension: the one of the first two
/// dimensions with more strided elements (§IV-C's two optimizations:
/// fewer calls, bounded locality damage).
int choose_base_dim(const SectionDesc& d) {
  if (d.rank < 2) return 0;
  return d.count[1] > d.count[0] ? 1 : 0;
}

/// §VII adaptive planner: estimated cost (ns) of the candidate execution
/// plans for a section, from the conduit's software profile. Three plans:
///   -1        — naive (contiguous runs if dim 0 is contiguous, else
///               per-element transfers);
///   0 or 1    — 1-D strided calls along that base dimension.
/// The estimate charges the per-call CPU overhead, the per-element NIC gap
/// for hardware iput (or the per-element put for software iput), and the
/// byte cost at link bandwidth.
double plan_cost(const net::SwProfile& sw, bool hw, const SectionDesc& d,
                 std::size_t elem_bytes, int plan) {
  const double o = static_cast<double>(sw.put_overhead);
  const double byte_ns = static_cast<double>(d.total) * elem_bytes /
                         (6.0 * sw.bw_efficiency);
  if (plan < 0) {
    if (d.dim0_contiguous()) {
      const double runs = static_cast<double>(d.total) / d.count[0];
      return runs * o + byte_ns;
    }
    return static_cast<double>(d.total) * o + byte_ns;
  }
  if (plan >= d.rank) return 1e300;
  const double calls = static_cast<double>(d.total) / d.count[plan];
  if (!hw) {
    // Software iput degenerates to per-element puts: never better than
    // naive, and worse than naive-runs for contiguous sections.
    return static_cast<double>(d.total) * o + byte_ns;
  }
  return calls * o +
         static_cast<double>(d.total) * sw.strided_elem_gap + byte_ns;
}

/// Picks the cheapest plan (-1 = naive, 0/1 = base dimension).
int choose_adaptive_plan(const net::SwProfile& sw, bool hw,
                         const SectionDesc& d, std::size_t elem_bytes) {
  int best = -1;
  double best_cost = plan_cost(sw, hw, d, elem_bytes, -1);
  for (int p = 0; p < 2 && p < d.rank; ++p) {
    const double c = plan_cost(sw, hw, d, elem_bytes, p);
    if (c < best_cost) {
      best_cost = c;
      best = p;
    }
  }
  return best;
}

/// Odometer over the index tuples of all dimensions except `skip_dim`.
/// Invokes fn(idx) for each tuple; idx[skip_dim] stays 0.
template <typename Fn>
void for_each_tuple(const SectionDesc& d, int skip_dim, Fn&& fn) {
  std::array<std::int64_t, kMaxDims> idx{};
  std::int64_t tuples = 1;
  for (int dim = 0; dim < d.rank; ++dim) {
    if (dim != skip_dim) tuples *= d.count[dim];
  }
  for (std::int64_t n = 0; n < tuples; ++n) {
    fn(idx);
    for (int dim = 0; dim < d.rank; ++dim) {
      if (dim == skip_dim) continue;
      if (++idx[dim] < d.count[dim]) break;
      idx[dim] = 0;
    }
  }
}

std::int64_t remote_elem_offset(const SectionDesc& d,
                                const std::array<std::int64_t, kMaxDims>& idx) {
  std::int64_t off = d.first_elem;
  for (int dim = 0; dim < d.rank; ++dim) off += idx[dim] * d.elem_stride[dim];
  return off;
}

std::int64_t packed_elem_offset(const std::array<std::int64_t, kMaxDims>& ps,
                                const SectionDesc& d,
                                const std::array<std::int64_t, kMaxDims>& idx) {
  std::int64_t off = 0;
  for (int dim = 0; dim < d.rank; ++dim) off += idx[dim] * ps[dim];
  return off;
}

}  // namespace

StridedStats Runtime::put_strided(int image, std::uint64_t base_off,
                                  std::size_t elem_bytes,
                                  const SectionDesc& dst,
                                  const void* src_packed) {
  require_init();
  const int rank0 = image - 1;
  const auto ps = packed_strides(dst);
  const auto* src = static_cast<const std::byte*>(src_packed);
  StridedStats stats;
  stats.elements = static_cast<std::size_t>(dst.total);
  auto& istats = per_image_[conduit_.rank()].stats;

  StridedAlgo algo = opts_.strided;
  int adaptive_base = -1;
  if (algo == StridedAlgo::kAdaptive) {
    adaptive_base = choose_adaptive_plan(conduit_.sw(), conduit_.hw_strided(),
                                         dst, elem_bytes);
    algo = adaptive_base < 0 ? StridedAlgo::kNaive : StridedAlgo::kTwoDim;
  }

  if (algo == StridedAlgo::kNaive) {
    // One contiguous transfer per innermost run (or per element when the
    // innermost dimension is itself strided).
    const bool contig = dst.dim0_contiguous();
    for_each_tuple(dst, /*skip_dim=*/0, [&](const auto& idx) {
      const std::int64_t roff = remote_elem_offset(dst, idx);
      const std::int64_t poff = packed_elem_offset(ps, dst, idx);
      if (contig) {
        conduit_.put(rank0, base_off + static_cast<std::uint64_t>(roff) * elem_bytes,
                     src + poff * static_cast<std::int64_t>(elem_bytes),
                     static_cast<std::size_t>(dst.count[0]) * elem_bytes,
                     /*nbi=*/false);
        ++stats.messages;
      } else {
        for (std::int64_t i = 0; i < dst.count[0]; ++i) {
          conduit_.put(
              rank0,
              base_off + static_cast<std::uint64_t>(roff + i * dst.elem_stride[0]) *
                             elem_bytes,
              src + (poff + i) * static_cast<std::int64_t>(elem_bytes),
              elem_bytes, /*nbi=*/false);
          ++stats.messages;
        }
      }
    });
  } else {
    // 2dim_strided: one 1-D strided call per tuple of the non-base dims.
    const int base = adaptive_base >= 0 ? adaptive_base : choose_base_dim(dst);
    for_each_tuple(dst, base, [&](const auto& idx) {
      const std::int64_t roff = remote_elem_offset(dst, idx);
      const std::int64_t poff = packed_elem_offset(ps, dst, idx);
      conduit_.iput(rank0,
                    base_off + static_cast<std::uint64_t>(roff) * elem_bytes,
                    /*dst_stride=*/dst.elem_stride[base],
                    src + poff * static_cast<std::int64_t>(elem_bytes),
                    /*src_stride=*/ps[base], elem_bytes,
                    static_cast<std::size_t>(dst.count[base]));
      ++stats.messages;
    });
  }
  istats.strided_puts += stats.messages;
  istats.put_bytes += stats.elements * elem_bytes;
  if (opts_.memory_model == MemoryModel::kStrict) conduit_.quiet();
  return stats;
}

StridedStats Runtime::get_strided(void* dst_packed, int image,
                                  std::uint64_t base_off,
                                  std::size_t elem_bytes,
                                  const SectionDesc& src) {
  require_init();
  const int rank0 = image - 1;
  const auto ps = packed_strides(src);
  auto* dst = static_cast<std::byte*>(dst_packed);
  StridedStats stats;
  stats.elements = static_cast<std::size_t>(src.total);
  auto& istats = per_image_[conduit_.rank()].stats;
  if (opts_.memory_model == MemoryModel::kStrict) conduit_.quiet();

  StridedAlgo algo = opts_.strided;
  int adaptive_base = -1;
  if (algo == StridedAlgo::kAdaptive) {
    adaptive_base = choose_adaptive_plan(conduit_.sw(), conduit_.hw_strided(),
                                         src, elem_bytes);
    algo = adaptive_base < 0 ? StridedAlgo::kNaive : StridedAlgo::kTwoDim;
  }

  if (algo == StridedAlgo::kNaive) {
    const bool contig = src.dim0_contiguous();
    for_each_tuple(src, 0, [&](const auto& idx) {
      const std::int64_t roff = remote_elem_offset(src, idx);
      const std::int64_t poff = packed_elem_offset(ps, src, idx);
      if (contig) {
        conduit_.get(dst + poff * static_cast<std::int64_t>(elem_bytes), rank0,
                     base_off + static_cast<std::uint64_t>(roff) * elem_bytes,
                     static_cast<std::size_t>(src.count[0]) * elem_bytes);
        ++stats.messages;
      } else {
        for (std::int64_t i = 0; i < src.count[0]; ++i) {
          conduit_.get(
              dst + (poff + i) * static_cast<std::int64_t>(elem_bytes), rank0,
              base_off + static_cast<std::uint64_t>(roff + i * src.elem_stride[0]) *
                             elem_bytes,
              elem_bytes);
          ++stats.messages;
        }
      }
    });
  } else {
    const int base = adaptive_base >= 0 ? adaptive_base : choose_base_dim(src);
    for_each_tuple(src, base, [&](const auto& idx) {
      const std::int64_t roff = remote_elem_offset(src, idx);
      const std::int64_t poff = packed_elem_offset(ps, src, idx);
      conduit_.iget(dst + poff * static_cast<std::int64_t>(elem_bytes),
                    /*dst_stride=*/ps[base], rank0,
                    base_off + static_cast<std::uint64_t>(roff) * elem_bytes,
                    /*src_stride=*/src.elem_stride[base], elem_bytes,
                    static_cast<std::size_t>(src.count[base]));
      ++stats.messages;
    });
  }
  istats.strided_gets += stats.messages;
  istats.get_bytes += stats.elements * elem_bytes;
  return stats;
}

}  // namespace caf
