// Multi-dimensional strided RMA (§IV-C): the naive algorithm, the paper's
// 2dim_strided algorithm, and this PR's aggregated (write-combining) plan.
//
// Host-side data is packed in section order (column-major over the selected
// elements); the remote side is described by a SectionDesc against the
// coarray's shape.
//
//   naive        — walk every index tuple; transfer one contiguous run per
//                  innermost (dim 0) segment: a single putmem/getmem when
//                  dim 0 of the section is contiguous (the matrix-oriented
//                  case that §V-D shows favours naive), else one
//                  putmem/getmem per element, exactly the 50*40*25-call
//                  behaviour of the paper's example.
//   2dim_strided — pick base_dim ∈ {0, 1} with the most strided elements
//                  (the paper restricts the choice to the first two
//                  dimensions to respect data locality), then issue one 1-D
//                  shmem_iput/iget per remaining index tuple. For the
//                  example this reduces 50*40*25 calls to 1*40*25.
//   aggregate    — puts only: stage every run into the write-combining
//                  chunk; many small runs ship as a few scatter messages.
//
// Run coalescing (Options::rma.run_coalescing) sits under all put/get run
// walks: innermost runs that happen to be adjacent in BOTH remote and
// packed space are merged into one transfer before dispatch.
#include <array>
#include <cmath>
#include <cstddef>

#include "caf/runtime.hpp"

namespace caf {

namespace {

/// Packed (host-buffer) element strides of a section: contiguous column-
/// major over the selected counts.
std::array<std::int64_t, kMaxDims> packed_strides(const SectionDesc& d) {
  std::array<std::int64_t, kMaxDims> ps{};
  std::int64_t s = 1;
  for (int dim = 0; dim < d.rank; ++dim) {
    ps[dim] = s;
    s *= d.count[dim];
  }
  return ps;
}

/// Chooses the 2dim_strided base dimension: the one of the first two
/// dimensions with more strided elements (§IV-C's two optimizations:
/// fewer calls, bounded locality damage).
int choose_base_dim(const SectionDesc& d) {
  if (d.rank < 2) return 0;
  return d.count[1] > d.count[0] ? 1 : 0;
}

// Planner plan identifiers beyond the 0/1 base dimensions.
constexpr int kPlanNaive = -1;
constexpr int kPlanAggregate = -2;

/// §VII adaptive planner: estimated cost (ns) of the candidate execution
/// plans for a section, from the conduit's software profile. Four plans:
///   kPlanNaive     — naive (contiguous runs if dim 0 is contiguous, else
///                    per-element transfers);
///   0 or 1         — 1-D strided calls along that base dimension;
///   kPlanAggregate — stage the runs through the write-combining chunk and
///                    ship them as scatter messages (puts only).
/// The estimate charges the per-call CPU overhead, the per-element NIC gap
/// for hardware iput (or the per-element put for software iput), and the
/// byte cost at the conduit's link bandwidth.
double plan_cost(const net::SwProfile& sw, bool hw, const SectionDesc& d,
                 std::size_t elem_bytes, int plan, bool is_put,
                 const RmaOptions& rma) {
  const double o = static_cast<double>(sw.put_overhead);
  const double link = sw.link_bytes_per_ns * sw.bw_efficiency;
  const double byte_ns = static_cast<double>(d.total) * elem_bytes / link;
  const bool contig = d.dim0_contiguous();
  if (plan == kPlanAggregate) {
    // Eligible only for puts with write-combining enabled, and only when
    // the individual runs fit the stage's small-put bound.
    if (!is_put || !rma.write_combining) return 1e300;
    const double run_bytes =
        static_cast<double>(contig ? d.count[0] : 1) * elem_bytes;
    if (run_bytes == 0 || run_bytes > static_cast<double>(rma.agg_max_put)) {
      return 1e300;
    }
    const double nrecs =
        contig ? static_cast<double>(d.total) / d.count[0]
               : static_cast<double>(d.total);
    const double wire = static_cast<double>(d.total) * elem_bytes +
                        nrecs * fabric::kScatterRecWire;
    const double msgs =
        std::ceil(wire / static_cast<double>(rma.agg_chunk_bytes));
    return nrecs * static_cast<double>(kAggStageCpuNs) +
           msgs * static_cast<double>(sw.per_msg_gap) + wire / link;
  }
  if (plan < 0) {
    if (contig) {
      const double runs = static_cast<double>(d.total) / d.count[0];
      return runs * o + byte_ns;
    }
    return static_cast<double>(d.total) * o + byte_ns;
  }
  if (plan >= d.rank) return 1e300;
  const double calls = static_cast<double>(d.total) / d.count[plan];
  if (!hw) {
    // Software iput degenerates to per-element puts: never better than
    // naive, and worse than naive-runs for contiguous sections.
    return static_cast<double>(d.total) * o + byte_ns;
  }
  return calls * o +
         static_cast<double>(d.total) * sw.strided_elem_gap + byte_ns;
}

/// Picks the cheapest plan (kPlanNaive, 0/1 = base dimension, or
/// kPlanAggregate when the write-combining stage wins).
int choose_adaptive_plan(const net::SwProfile& sw, bool hw,
                         const SectionDesc& d, std::size_t elem_bytes,
                         bool is_put, const RmaOptions& rma) {
  int best = kPlanNaive;
  double best_cost =
      plan_cost(sw, hw, d, elem_bytes, kPlanNaive, is_put, rma);
  for (int p = 0; p < 2 && p < d.rank; ++p) {
    const double c = plan_cost(sw, hw, d, elem_bytes, p, is_put, rma);
    if (c < best_cost) {
      best_cost = c;
      best = p;
    }
  }
  const double agg =
      plan_cost(sw, hw, d, elem_bytes, kPlanAggregate, is_put, rma);
  if (agg < best_cost) best = kPlanAggregate;
  return best;
}

/// Odometer over the index tuples of all dimensions except `skip_dim`.
/// Invokes fn(idx) for each tuple; idx[skip_dim] stays 0.
template <typename Fn>
void for_each_tuple(const SectionDesc& d, int skip_dim, Fn&& fn) {
  std::array<std::int64_t, kMaxDims> idx{};
  std::int64_t tuples = 1;
  for (int dim = 0; dim < d.rank; ++dim) {
    if (dim != skip_dim) tuples *= d.count[dim];
  }
  for (std::int64_t n = 0; n < tuples; ++n) {
    fn(idx);
    for (int dim = 0; dim < d.rank; ++dim) {
      if (dim == skip_dim) continue;
      if (++idx[dim] < d.count[dim]) break;
      idx[dim] = 0;
    }
  }
}

std::int64_t remote_elem_offset(const SectionDesc& d,
                                const std::array<std::int64_t, kMaxDims>& idx) {
  std::int64_t off = d.first_elem;
  for (int dim = 0; dim < d.rank; ++dim) off += idx[dim] * d.elem_stride[dim];
  return off;
}

std::int64_t packed_elem_offset(const std::array<std::int64_t, kMaxDims>& ps,
                                const SectionDesc& d,
                                const std::array<std::int64_t, kMaxDims>& idx) {
  std::int64_t off = 0;
  for (int dim = 0; dim < d.rank; ++dim) off += idx[dim] * ps[dim];
  return off;
}

/// Merges adjacent innermost runs before dispatch. A run extends the
/// pending one only when it is adjacent in BOTH remote and packed element
/// space, so one contiguous memcpy on each side covers the merged range.
template <typename Dispatch>
class RunCoalescer {
 public:
  RunCoalescer(bool enabled, StridedStats& stats, ImageStats& istats,
               Dispatch dispatch)
      : enabled_(enabled), stats_(stats), istats_(istats),
        dispatch_(dispatch) {}

  void add(std::int64_t roff, std::int64_t poff, std::int64_t elems) {
    if (len_ > 0 && enabled_ && roff == roff_ + len_ && poff == poff_ + len_) {
      len_ += elems;
      ++stats_.coalesced;
      ++istats_.coalesced_runs;
      return;
    }
    flush();
    roff_ = roff;
    poff_ = poff;
    len_ = elems;
  }

  void flush() {
    if (len_ == 0) return;
    dispatch_(roff_, poff_, len_);
    ++stats_.messages;
    len_ = 0;
  }

 private:
  bool enabled_;
  StridedStats& stats_;
  ImageStats& istats_;
  Dispatch dispatch_;
  std::int64_t roff_ = 0;
  std::int64_t poff_ = 0;
  std::int64_t len_ = 0;
};

}  // namespace

StridedStats Runtime::put_strided(int image, std::uint64_t base_off,
                                  std::size_t elem_bytes,
                                  const SectionDesc& dst,
                                  const void* src_packed) {
  require_init();
  const int rank0 = image - 1;
  const auto ps = packed_strides(dst);
  const auto* src = static_cast<const std::byte*>(src_packed);
  StridedStats stats;
  stats.elements = static_cast<std::size_t>(dst.total);
  auto& istats = per_image_[conduit_.rank()].stats;

  StridedAlgo algo = opts_.strided;
  int adaptive_base = -1;
  if (algo == StridedAlgo::kAdaptive) {
    const int plan =
        choose_adaptive_plan(conduit_.sw(), conduit_.hw_strided(), dst,
                             elem_bytes, /*is_put=*/true, opts_.rma);
    if (plan == kPlanAggregate) {
      algo = StridedAlgo::kAggregate;
    } else if (plan == kPlanNaive) {
      algo = StridedAlgo::kNaive;
    } else {
      algo = StridedAlgo::kTwoDim;
      adaptive_base = plan;
    }
  }
  // The aggregated plan needs the write-combining stage; without it the
  // runs degrade gracefully to the naive walk.
  if (algo == StridedAlgo::kAggregate && !opts_.rma.write_combining) {
    algo = StridedAlgo::kNaive;
  }
  const bool nbi = deferred();

  if (algo == StridedAlgo::kNaive || algo == StridedAlgo::kAggregate) {
    // One contiguous transfer per innermost run (or per element when the
    // innermost dimension is itself strided), coalescing adjacent runs.
    const bool contig = dst.dim0_contiguous();
    const bool aggregate = algo == StridedAlgo::kAggregate;
    auto send = [&](std::int64_t roff, std::int64_t poff, std::int64_t elems) {
      const std::uint64_t off =
          base_off + static_cast<std::uint64_t>(roff) * elem_bytes;
      const std::byte* p = src + poff * static_cast<std::int64_t>(elem_bytes);
      const std::size_t n = static_cast<std::size_t>(elems) * elem_bytes;
      if (aggregate) {
        pipelined_put(rank0, off, p, n);
      } else {
        conduit_.put(rank0, off, p, n, nbi);
      }
    };
    RunCoalescer co(opts_.rma.run_coalescing, stats, istats, send);
    for_each_tuple(dst, /*skip_dim=*/0, [&](const auto& idx) {
      const std::int64_t roff = remote_elem_offset(dst, idx);
      const std::int64_t poff = packed_elem_offset(ps, dst, idx);
      if (contig) {
        co.add(roff, poff, dst.count[0]);
      } else {
        for (std::int64_t i = 0; i < dst.count[0]; ++i) {
          co.add(roff + i * dst.elem_stride[0], poff + i, 1);
        }
      }
    });
    co.flush();
  } else {
    // 2dim_strided: one 1-D strided call per tuple of the non-base dims.
    const int base = adaptive_base >= 0 ? adaptive_base : choose_base_dim(dst);
    for_each_tuple(dst, base, [&](const auto& idx) {
      const std::int64_t roff = remote_elem_offset(dst, idx);
      const std::int64_t poff = packed_elem_offset(ps, dst, idx);
      conduit_.iput(rank0,
                    base_off + static_cast<std::uint64_t>(roff) * elem_bytes,
                    /*dst_stride=*/dst.elem_stride[base],
                    src + poff * static_cast<std::int64_t>(elem_bytes),
                    /*src_stride=*/ps[base], elem_bytes,
                    static_cast<std::size_t>(dst.count[base]));
      ++stats.messages;
    });
  }
  istats.strided_puts += stats.messages;
  istats.put_bytes += stats.elements * elem_bytes;
  if (!deferred()) {
    // Eager completion: flush any staged runs now, then the paper's strict
    // quiet. In deferred mode both wait for the next completion point.
    if (algo == StridedAlgo::kAggregate) agg_flush();
    if (opts_.memory_model == MemoryModel::kStrict) conduit_.quiet();
  }
  return stats;
}

StridedStats Runtime::get_strided(void* dst_packed, int image,
                                  std::uint64_t base_off,
                                  std::size_t elem_bytes,
                                  const SectionDesc& src) {
  require_init();
  const int rank0 = image - 1;
  const auto ps = packed_strides(src);
  auto* dst = static_cast<std::byte*>(dst_packed);
  StridedStats stats;
  stats.elements = static_cast<std::size_t>(src.total);
  auto& istats = per_image_[conduit_.rank()].stats;
  if (opts_.memory_model == MemoryModel::kStrict) {
    // A strict-mode get must observe this image's program-order-earlier
    // puts: flush staged records headed to the read target, then complete
    // in-flight puts — but only when the tracker shows any toward it.
    auto& img = per_image_[me()];
    if (!img.agg_recs.empty() && img.agg_target == rank0) agg_flush();
    if (conduit_.pending(rank0)) conduit_.quiet();
  }

  StridedAlgo algo = opts_.strided;
  int adaptive_base = -1;
  if (algo == StridedAlgo::kAdaptive) {
    const int plan =
        choose_adaptive_plan(conduit_.sw(), conduit_.hw_strided(), src,
                             elem_bytes, /*is_put=*/false, opts_.rma);
    if (plan == kPlanNaive || plan == kPlanAggregate) {
      algo = StridedAlgo::kNaive;
    } else {
      algo = StridedAlgo::kTwoDim;
      adaptive_base = plan;
    }
  }
  // There is no aggregated get (the stage only combines writes).
  if (algo == StridedAlgo::kAggregate) algo = StridedAlgo::kNaive;

  if (algo == StridedAlgo::kNaive) {
    const bool contig = src.dim0_contiguous();
    auto recv = [&](std::int64_t roff, std::int64_t poff, std::int64_t elems) {
      conduit_.get(dst + poff * static_cast<std::int64_t>(elem_bytes), rank0,
                   base_off + static_cast<std::uint64_t>(roff) * elem_bytes,
                   static_cast<std::size_t>(elems) * elem_bytes);
    };
    RunCoalescer co(opts_.rma.run_coalescing, stats, istats, recv);
    for_each_tuple(src, 0, [&](const auto& idx) {
      const std::int64_t roff = remote_elem_offset(src, idx);
      const std::int64_t poff = packed_elem_offset(ps, src, idx);
      if (contig) {
        co.add(roff, poff, src.count[0]);
      } else {
        for (std::int64_t i = 0; i < src.count[0]; ++i) {
          co.add(roff + i * src.elem_stride[0], poff + i, 1);
        }
      }
    });
    co.flush();
  } else {
    const int base = adaptive_base >= 0 ? adaptive_base : choose_base_dim(src);
    for_each_tuple(src, base, [&](const auto& idx) {
      const std::int64_t roff = remote_elem_offset(src, idx);
      const std::int64_t poff = packed_elem_offset(ps, src, idx);
      conduit_.iget(dst + poff * static_cast<std::int64_t>(elem_bytes),
                    /*dst_stride=*/ps[base], rank0,
                    base_off + static_cast<std::uint64_t>(roff) * elem_bytes,
                    /*src_stride=*/src.elem_stride[base], elem_bytes,
                    static_cast<std::size_t>(src.count[base]));
      ++stats.messages;
    });
  }
  istats.strided_gets += stats.messages;
  istats.get_bytes += stats.elements * elem_bytes;
  return stats;
}

}  // namespace caf
