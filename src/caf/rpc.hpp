// caf::rpc — asynchronous remote execution over the conduit abstraction
// (DESIGN.md §4f).
//
//   caf::rpc(rt, image, fn, args...)      -> future<R>   (round trip)
//   caf::rpc_ff(rt, image, fn, args...)                   (fire and forget)
//   caf::rpc_completions(rt, image, ...)  -> Completions<R>
//
// `fn` and every argument must be trivially copyable (captureless lambdas
// and lambdas with trivially copyable captures qualify); they are memcpy-
// serialized into a bounded request blob. `fn` runs AT THE TARGET image —
// inside it, rpc_target_runtime()/rpc_target_image() identify the executing
// image, sym_view<T> resolves symmetric-heap offsets to target-local
// pointers, and rpc_charge(ns) bills simulated compute to the handler.
// Handlers must be communication-free (local compute + local memory only):
// the mailbox transport may execute them from scheduler context, where no
// fiber is available to block on the NIC.
//
// Two transports sit behind one interface (RpcOptions::transport):
//
//   * kMailbox — the OpenSHMEM emulation: symmetric per-pair slot rings
//     written with put, published with the put+quiet+amo signaling idiom
//     (the doorbell fetch-add is the signal), drained by shmem_test-style
//     polling woven into the runtime's progress points. No progress thread:
//     a target blocked at a known progress point is marked "parked" and the
//     sender's doorbell completion drains it from the event loop.
//   * kAm — the GASNet path: one registered medium-AM handler carries the
//     request; the fabric's submit_am model prices the handler CPU and
//     serializes it on the target (implicit progress even mid-compute).
//
// Replies and mailbox acks ride Fabric::submit_reply (control-channel
// timing, fault-injected like any message). A target's death surfaces as
// kStatFailedImage through the future, discovered by the initiator's
// failure sweep against the engine's declared membership.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "caf/future.hpp"
#include "caf/runtime.hpp"

namespace gasnet {
struct Token;
}

namespace caf {

// ---------------------------------------------------------------------------
// Target-side context (valid only while an RPC handler runs)
// ---------------------------------------------------------------------------

/// The runtime executing the current RPC handler. Null outside a handler.
Runtime* rpc_target_runtime();
/// 1-based image the current RPC handler runs on (0 outside a handler).
int rpc_target_image();
/// Bills `ns` of simulated compute to the current handler invocation: the
/// target's handler unit is occupied that much longer and the reply leaves
/// later. The stand-in for real CPU work inside a handler body.
void rpc_charge(sim::Time ns);

/// A typed window over `count` Ts at symmetric offset `off`, resolvable on
/// whichever image executes the handler. Trivially copyable, so it passes
/// through the serialization shim; local() is only meaningful inside a
/// handler (it resolves against the *target's* segment).
template <typename T>
struct sym_view {
  std::uint64_t off = 0;
  std::uint32_t count = 0;

  T* local() const {
    Runtime* rt = rpc_target_runtime();
    assert(rt != nullptr && "sym_view::local() outside an RPC handler");
    return reinterpret_cast<T*>(rt->image_addr(rpc_target_image(), off));
  }
  T& operator[](std::size_t i) const { return local()[i]; }
};

namespace rpc_detail {

/// Per-slot wire header of the mailbox transport.
struct SlotHeader {
  std::uint64_t seq = 0;  ///< 1-based per-(src,dst) sequence; 0 = empty slot
  std::uint64_t fn = 0;   ///< trampoline id
  std::uint64_t req_id = 0;
  std::uint32_t bytes = 0;  ///< payload bytes following the header
  std::uint32_t flags = 0;
};
static_assert(sizeof(SlotHeader) == 32);
inline constexpr std::uint32_t kFlagFf = 1u;  ///< fire-and-forget request

/// Type-erased handler entry point. Returns the bytes written to `ret`.
using Trampoline = std::size_t (*)(Runtime&, const std::byte* blob,
                                   std::byte* ret, std::size_t ret_cap);

void add_charge(sim::Time ns);

/// One in-flight round-trip request on the initiator.
struct Outstanding {
  std::shared_ptr<FutureCore> op;      ///< operation-completion core
  std::shared_ptr<FutureCore> remote;  ///< remote-completion core
  /// Typed value installer, built by the rpc<> template (null for void).
  std::function<void(const std::byte*, std::size_t)> set_value;
  int target0 = -1;
};

// ---- serialization shim (trivially-copyable memcpy packing) ----

template <typename T>
void pack_one(std::vector<std::byte>& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>,
                "caf::rpc arguments must be trivially copyable");
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

struct BlobReader {
  const std::byte* p;
  template <typename T>
  T take() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    return v;
  }
};

/// The instantiation whose address identifies (F, Args...) on the wire.
/// Identification by function pointer is the single-process stand-in for
/// the handler-index registration a distributed build would use.
template <typename F, typename... Args>
std::size_t invoke_trampoline(Runtime&, const std::byte* blob, std::byte* ret,
                              std::size_t ret_cap) {
  BlobReader r{blob};
  F f = r.template take<F>();
  // Braced init evaluates left to right, matching the pack order.
  std::tuple<Args...> args{r.template take<Args>()...};
  using R = std::invoke_result_t<F, Args...>;
  if constexpr (std::is_void_v<R>) {
    (void)ret;
    (void)ret_cap;
    std::apply(std::move(f), std::move(args));
    return 0;
  } else {
    static_assert(std::is_trivially_copyable_v<R>,
                  "caf::rpc return type must be trivially copyable");
    R v = std::apply(std::move(f), std::move(args));
    assert(sizeof(R) <= ret_cap);
    std::memcpy(ret, &v, sizeof(R));
    return sizeof(R);
  }
}

template <typename F, typename... Args>
std::uint64_t fn_id() {
  Trampoline t = &invoke_trampoline<F, Args...>;
  return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(t));
}

}  // namespace rpc_detail

// ---------------------------------------------------------------------------
// RpcEngine — per-Runtime transport + completion machinery
// ---------------------------------------------------------------------------

class RpcEngine {
 public:
  static constexpr std::size_t kHeaderBytes = sizeof(rpc_detail::SlotHeader);
  /// Reply wire framing (req_id + length) added to the returned bytes.
  static constexpr std::size_t kReplyOverhead = 16;
  /// Largest trivially-copyable RPC return value.
  static constexpr std::size_t kMaxRet = 64;

  RpcEngine(Runtime& rt, const RpcOptions& opts);
  ~RpcEngine();

  /// Collective: allocates the symmetric mailbox/doorbell/ack cells (same
  /// allocation sequence on every image) and registers the AM handler on
  /// the kAm transport. Called from Runtime::init().
  void init_symmetric();

  bool am_transport() const { return am_; }
  /// Largest request blob (serialized fn + args) one RPC can carry.
  std::size_t payload_capacity() const {
    return opts_.slot_bytes - kHeaderBytes;
  }

  /// Fiber-context progress point: drain this image's request mailbox and
  /// run ready future continuations. Cheap no-op (one local doorbell read)
  /// when idle.
  void progress();

  /// Marks `image` (0-based) parked at a blocking runtime progress point;
  /// while parked, a sender's doorbell completion drains the mailbox from
  /// scheduler context so requests don't wait out the block.
  void set_parked(int image, bool on);

  /// Fails every outstanding request of `image` whose target is declared
  /// failed (kStatFailedImage through the future). Returns how many.
  int sweep_failures(int image);

  /// Issues one request. `rec` carries the completion cores (empty for
  /// fire-and-forget). A known-dead target fails the cores immediately
  /// (ff requests are silently dropped).
  void submit(int target0, std::uint64_t fn, const std::byte* blob,
              std::size_t bytes, rpc_detail::Outstanding rec, bool ff);

  /// Binds a fresh future core to the calling image: owner rank, runtime
  /// back pointer, continuation sink, and the operation's target rank.
  void bind_local(rpc_detail::FutureCore& core, int target0);

  Runtime& runtime() { return rt_; }

  /// Blocks the calling fiber until `core` completes (see rpc_wait_core).
  void wait(rpc_detail::FutureCore& core);

 private:
  struct PerPe {
    std::vector<std::uint64_t> sent;      ///< per target: requests issued
    std::vector<std::uint64_t> consumed;  ///< per source: requests drained
    std::uint64_t handled = 0;            ///< total requests drained
    std::uint64_t replies_seen = 0;       ///< total replies processed
    std::uint64_t next_req = 0;
    bool parked = false;
    bool draining = false;  ///< re-entrancy guard for drain passes
    bool in_ready = false;  ///< re-entrancy guard for continuation runs
    std::unordered_map<std::uint64_t, rpc_detail::Outstanding> outstanding;
    std::vector<std::function<void()>> ready;  ///< fulfilled continuations
    sim::Time proc_free = 0;  ///< scheduler-context handler serialization
    // Cached obs counters (stable registry handles).
    std::uint64_t* c_sent = nullptr;
    std::uint64_t* c_ff = nullptr;
    std::uint64_t* c_handled = nullptr;
    std::uint64_t* c_replies = nullptr;
    std::uint64_t* c_failed = nullptr;
    std::uint64_t* c_parked_drains = nullptr;
  };

  int self() const;
  std::int64_t read_bell(int image);
  void fail_outstanding(PerPe& st, rpc_detail::Outstanding rec);
  void handle_am(const gasnet::Token& tok, const std::byte* payload,
                 std::size_t payload_bytes, std::uint64_t wire_id,
                 std::uint64_t fn);

  // Mailbox transport.
  void mailbox_send(int me, int target0, const rpc_detail::SlotHeader& hdr,
                    const std::byte* blob);
  /// Drains image `t`'s mailbox. `fiber` selects execution context: on the
  /// owning fiber the handler advances the fiber clock; from the scheduler
  /// it serializes on the image's proc_free ledger starting at `at`.
  void drain(int t, bool fiber, sim::Time at);
  /// Executes one request at image `t` and emits the reply timing. `at`
  /// seeds the proc_free ledger on the scheduler-context path; the fiber
  /// path uses the image's own clock instead.
  void exec_request(int t, int src, const rpc_detail::SlotHeader& hdr,
                    const std::byte* payload, bool fiber, sim::Time at);
  void send_ack(int t, int src, std::uint64_t consumed, sim::Time at);
  /// Times and schedules the reply delivery for request `req_id` back to
  /// `src`; fulfills the initiator's cores at the delivery event.
  void send_reply(int t, int src, std::uint64_t req_id,
                  const std::byte* ret_bytes, std::size_t ret_len,
                  sim::Time at);
  void bump_bell(int image, sim::Time at);
  void run_ready(int image);

  friend void rpc_wait_core(Runtime& rt, rpc_detail::FutureCore& core);

  Runtime& rt_;
  Conduit& conduit_;
  RpcOptions opts_;
  bool am_ = false;
  int am_handler_ = -1;
  std::uint64_t mbox_off_ = 0;  ///< n * slots_per_pair * slot_bytes ring area
  std::uint64_t bell_off_ = 0;  ///< one int64 doorbell
  std::uint64_t ack_off_ = 0;   ///< n int64 cumulative-consumed cells
  std::vector<PerPe> per_;
};

// ---------------------------------------------------------------------------
// Public call templates
// ---------------------------------------------------------------------------

namespace rpc_detail {

template <typename F, typename... Args>
std::vector<std::byte> pack_request(const F& f, const Args&... args) {
  static_assert(std::is_trivially_copyable_v<F>,
                "caf::rpc callable must be trivially copyable");
  std::vector<std::byte> blob;
  blob.reserve(sizeof(F) + (0 + ... + sizeof(Args)));
  pack_one(blob, f);
  (pack_one(blob, args), ...);
  return blob;
}

}  // namespace rpc_detail

/// Full completion triple: source (request injected; buffers reusable),
/// remote (handler executed at the target), operation (result available
/// here). source is ready on return — injection is synchronous in this
/// runtime (the blob is copied before send returns).
template <typename F, typename... Args>
auto rpc_completions(Runtime& rt, int image, F f, Args... args)
    -> Completions<std::invoke_result_t<F, Args...>> {
  using R = std::invoke_result_t<F, Args...>;
  RpcEngine* eng = rt.rpc_engine();
  if (eng == nullptr) {
    throw std::logic_error("caf::rpc: Options::rpc.enabled is false");
  }
  if constexpr (!std::is_void_v<R>) {
    static_assert(sizeof(R) <= RpcEngine::kMaxRet,
                  "caf::rpc return value too large");
  }
  auto op = std::make_shared<rpc_detail::FutureState<R>>();
  auto remote = std::make_shared<rpc_detail::FutureState<void>>();
  eng->bind_local(*op, image - 1);
  eng->bind_local(*remote, image - 1);

  rpc_detail::Outstanding rec;
  rec.op = op;
  rec.remote = remote;
  rec.target0 = image - 1;
  if constexpr (!std::is_void_v<R>) {
    rec.set_value = [op](const std::byte* p, std::size_t n) {
      R v{};
      std::memcpy(&v, p, n < sizeof(R) ? n : sizeof(R));
      op->set(std::move(v));
    };
  }

  const std::vector<std::byte> blob = rpc_detail::pack_request(f, args...);
  eng->submit(image - 1, rpc_detail::fn_id<F, Args...>(), blob.data(),
              blob.size(), std::move(rec), /*ff=*/false);

  Completions<R> c;
  c.source = make_ready_future();
  c.remote = future<void>(std::move(remote));
  c.operation = future<R>(std::move(op));
  return c;
}

/// Runs `f(args...)` on `image` (1-based); the returned future completes on
/// this image when the reply arrives.
template <typename F, typename... Args>
auto rpc(Runtime& rt, int image, F f, Args... args)
    -> future<std::invoke_result_t<F, Args...>> {
  return rpc_completions(rt, image, std::move(f), std::move(args)...)
      .operation;
}

/// Fire-and-forget: no reply, no future; delivery failures are swallowed
/// (use rpc() when the caller needs the failure surfaced).
template <typename F, typename... Args>
void rpc_ff(Runtime& rt, int image, F f, Args... args) {
  static_assert(
      std::is_void_v<std::invoke_result_t<F, Args...>>,
      "caf::rpc_ff requires a void handler (the result has nowhere to go)");
  RpcEngine* eng = rt.rpc_engine();
  if (eng == nullptr) {
    throw std::logic_error("caf::rpc_ff: Options::rpc.enabled is false");
  }
  const std::vector<std::byte> blob = rpc_detail::pack_request(f, args...);
  eng->submit(image - 1, rpc_detail::fn_id<F, Args...>(), blob.data(),
              blob.size(), rpc_detail::Outstanding{}, /*ff=*/true);
}

}  // namespace caf
