// ShmemConduit — the paper's contribution: CAF's runtime needs mapped
// directly onto the OpenSHMEM API (Table II).
//
//   allocate            → shmalloc            (collective, implicit barrier)
//   put/get             → shmem_putmem/getmem
//   1-D strided         → shmem_iput/iget     (vendor decides HW vs loop)
//   quiet               → shmem_quiet
//   atomics             → shmem_swap/cswap/fadd/and/or/xor
//   wait                → shmem_wait_until
//   barrier             → shmem_barrier_all
//   co_broadcast/co_op  → shmem_broadcast / shmem_<op>_to_all
#pragma once

#include <cstring>
#include <memory>
#include <vector>

#include "caf/conduit.hpp"
#include "shmem/world.hpp"

namespace caf {

class ShmemConduit final : public Conduit {
 public:
  explicit ShmemConduit(shmem::World& world)
      : world_(world), seg_bytes_(world.domain().segment_bytes()) {}

  /// Enables the §VII future-work optimization: co-indexed accesses to
  /// images on the caller's node go through shmem_ptr as direct load/store
  /// (a host memcpy at intra-node copy bandwidth) instead of the library's
  /// put/get path.
  void set_intra_node_direct(bool on) { intra_node_direct_ = on; }
  bool intra_node_direct() const { return intra_node_direct_; }

  int rank() const override { return world_.my_pe(); }
  int nranks() const override { return world_.n_pes(); }
  std::byte* segment(int rank) override { return world_.domain().segment(rank); }
  std::size_t segment_bytes() const override { return seg_bytes_; }
  const net::SwProfile& sw() const override { return world_.sw(); }
  sim::Engine& engine() override { return world_.engine(); }
  bool hw_strided() const override { return world_.sw().hw_strided; }
  bool native_amo() const override { return world_.sw().nic_amo; }

  std::uint64_t allocate(std::size_t bytes) override {
    void* p = world_.shmalloc(bytes);
    return world_.offset_of(p);
  }
  void deallocate(std::uint64_t offset) override {
    world_.shfree(local_addr(offset));
  }

  void poke(int rank, std::uint64_t off, const void* src, std::size_t n,
            sim::Time t) override {
    world_.domain().poke(rank, off, src, n, t);
  }

  std::int64_t do_amo_swap(int rank, std::uint64_t off, std::int64_t v) override {
    return world_.swap(i64_addr(off), v, rank);
  }
  std::int64_t do_amo_cswap(int rank, std::uint64_t off, std::int64_t cond,
                         std::int64_t v) override {
    return world_.cswap(i64_addr(off), cond, v, rank);
  }
  std::int64_t do_amo_fadd(int rank, std::uint64_t off, std::int64_t v) override {
    return world_.fadd(i64_addr(off), v, rank);
  }
  std::int64_t do_amo_fand(int rank, std::uint64_t off, std::int64_t m) override {
    return world_.fetch_and(i64_addr(off), m, rank);
  }
  std::int64_t do_amo_for(int rank, std::uint64_t off, std::int64_t m) override {
    return world_.fetch_or(i64_addr(off), m, rank);
  }
  std::int64_t do_amo_fxor(int rank, std::uint64_t off, std::int64_t m) override {
    return world_.fetch_xor(i64_addr(off), m, rank);
  }

  void wait_until(std::uint64_t off, Cmp cmp, std::int64_t value) override {
    world_.wait_until(i64_addr(off), cmp, value);
  }
  void do_barrier() override { world_.barrier_all(); }

  bool direct_reachable(int target) override {
    return (intra_node_direct_ && world_.ptr(local_addr(0), target) != nullptr) ||
           node_transport_reachable(target);
  }

  fabric::Domain* rma_domain() override { return &world_.domain(); }

  bool has_native_collectives() const override { return true; }
  void native_broadcast(std::uint64_t off, std::size_t nbytes,
                        int root) override {
    world_.broadcast(local_addr(off), nbytes, root);
  }
  void native_reduce_f64(std::uint64_t off, std::size_t nelems,
                         ReduceOp op) override {
    auto* p = reinterpret_cast<double*>(local_addr(off));
    world_.reduce(p, p, nelems, op);
  }
  void native_reduce_i64(std::uint64_t off, std::size_t nelems,
                         ReduceOp op) override {
    auto* p = reinterpret_cast<std::int64_t*>(local_addr(off));
    world_.reduce(p, p, nelems, op);
  }

  shmem::World& world() { return world_; }

 protected:
  void do_put(int rank, std::uint64_t dst_off, const void* src, std::size_t n,
              bool nbi) override {
    if (intra_node_direct_ && direct_store(rank, dst_off, src, n)) return;
    if (nbi) {
      world_.putmem_nbi(local_addr(dst_off), src, n, rank);
    } else {
      world_.putmem(local_addr(dst_off), src, n, rank);
    }
  }
  void do_get(void* dst, int rank, std::uint64_t src_off,
              std::size_t n) override {
    if (intra_node_direct_) {
      if (const void* p = world_.ptr(local_addr(src_off), rank)) {
        world_.engine().advance(direct_copy_cost(n));
        std::memcpy(dst, p, n);
        DirectCounters& t = direct_tele(world_.my_pe());
        ++*t.gets;
        ++*t.elided_msgs;
        *t.elided_bytes += n;
        return;
      }
    }
    world_.getmem(dst, local_addr(src_off), n, rank);
  }
  void do_iput(int rank, std::uint64_t dst_off, std::ptrdiff_t dst_stride,
               const void* src, std::ptrdiff_t src_stride,
               std::size_t elem_bytes, std::size_t nelems) override {
    if (intra_node_direct_ && nelems > 0 &&
        world_.ptr(local_addr(dst_off), rank) != nullptr) {
      {
        world_.engine().advance(direct_strided_cost(elem_bytes, nelems));
        const auto* s = static_cast<const std::byte*>(src);
        const sim::Time now = world_.engine().now();
        const std::int64_t eb = static_cast<std::int64_t>(elem_bytes);
        for (std::size_t i = 0; i < nelems; ++i) {
          const std::int64_t k = static_cast<std::int64_t>(i);
          // poke (not a bare store) so wait_until watchers see each element.
          world_.domain().poke(
              rank, dst_off + static_cast<std::uint64_t>(dst_stride * eb * k),
              s + src_stride * eb * k, elem_bytes, now);
        }
        DirectCounters& t = direct_tele(world_.my_pe());
        ++*t.iputs;
        *t.elided_msgs += hw_strided() ? 1 : nelems;
        *t.elided_bytes += elem_bytes * nelems;
        return;
      }
    }
    world_.iputmem(local_addr(dst_off), src, dst_stride, src_stride,
                   elem_bytes, nelems, rank);
  }
  void do_iget(void* dst, std::ptrdiff_t dst_stride, int rank,
               std::uint64_t src_off, std::ptrdiff_t src_stride,
               std::size_t elem_bytes, std::size_t nelems) override {
    if (intra_node_direct_ && nelems > 0) {
      if (const auto* p = static_cast<const std::byte*>(
              world_.ptr(local_addr(src_off), rank))) {
        world_.engine().advance(direct_strided_cost(elem_bytes, nelems));
        auto* d = static_cast<std::byte*>(dst);
        const std::int64_t eb = static_cast<std::int64_t>(elem_bytes);
        for (std::size_t i = 0; i < nelems; ++i) {
          const std::int64_t k = static_cast<std::int64_t>(i);
          std::memcpy(d + dst_stride * eb * k, p + src_stride * eb * k,
                      elem_bytes);
        }
        DirectCounters& t = direct_tele(world_.my_pe());
        ++*t.igets;
        *t.elided_msgs += hw_strided() ? 1 : nelems;
        *t.elided_bytes += elem_bytes * nelems;
        return;
      }
    }
    world_.igetmem(dst, local_addr(src_off), dst_stride, src_stride,
                   elem_bytes, nelems, rank);
  }
  void do_put_scatter(int rank, const fabric::ScatterRec* recs,
                      std::size_t nrecs, const void* payload,
                      std::size_t payload_bytes) override {
    if (intra_node_direct_ && nrecs > 0 &&
        world_.ptr(local_addr(0), rank) != nullptr) {
      world_.engine().advance(direct_copy_cost(payload_bytes) +
                              static_cast<sim::Time>(nrecs) * kDirectElemGap);
      const auto* p = static_cast<const std::byte*>(payload);
      const sim::Time now = world_.engine().now();
      for (std::size_t i = 0; i < nrecs; ++i) {
        world_.domain().poke(rank, recs[i].dst_off, p + recs[i].payload_off,
                             recs[i].len, now);
      }
      DirectCounters& t = direct_tele(world_.my_pe());
      ++*t.scatters;
      ++*t.elided_msgs;  // the write-combined message itself stays off the wire
      *t.elided_bytes += payload_bytes;
      return;
    }
    world_.putmem_scatter_nbi(rank, recs, nrecs, payload, payload_bytes);
  }
  void do_quiet() override { world_.quiet(); }

 private:
  std::byte* local_addr(std::uint64_t off) {
    return world_.domain().segment(world_.my_pe()) + off;
  }
  std::int64_t* i64_addr(std::uint64_t off) {
    return reinterpret_cast<std::int64_t*>(local_addr(off));
  }

  /// Per-element issue cost of a direct strided/scatter store stream (the
  /// loop-carried address arithmetic; no NIC, no library call).
  static constexpr sim::Time kDirectElemGap = 2;

  sim::Time direct_copy_cost(std::size_t n) const {
    // A cache-coherent store stream: ~20 ns issue plus copy bandwidth.
    return 20 + sim::from_ns(static_cast<double>(n) /
                             world_.domain().fabric().profile().local_bytes_per_ns);
  }

  sim::Time direct_strided_cost(std::size_t elem_bytes,
                                std::size_t nelems) const {
    return direct_copy_cost(elem_bytes * nelems) +
           static_cast<sim::Time>(nelems) * kDirectElemGap;
  }

  /// Same-node put through shmem_ptr: advance the clock by the copy cost,
  /// then store directly (poke fires the write hook so waiters wake).
  bool direct_store(int rank, std::uint64_t dst_off, const void* src,
                    std::size_t n) {
    if (world_.ptr(local_addr(dst_off), rank) == nullptr) return false;
    world_.engine().advance(direct_copy_cost(n));
    world_.domain().poke(rank, dst_off, src, n, world_.engine().now());
    DirectCounters& t = direct_tele(world_.my_pe());
    ++*t.puts;
    ++*t.elided_msgs;
    *t.elided_bytes += n;
    return true;
  }

  /// Cached registry handles for the shmem_ptr direct load/store path
  /// ("direct.*" counters, keyed by rank): how often each operation class
  /// short-circuited the library, and how many network messages that elided
  /// (strided ops count per-element messages unless hardware-strided).
  struct DirectCounters {
    std::uint64_t* puts = nullptr;
    std::uint64_t* gets = nullptr;
    std::uint64_t* iputs = nullptr;
    std::uint64_t* igets = nullptr;
    std::uint64_t* scatters = nullptr;
    std::uint64_t* elided_msgs = nullptr;
    std::uint64_t* elided_bytes = nullptr;
  };

  DirectCounters& direct_tele(int rank) {
    if (direct_tele_.empty()) {
      direct_tele_.resize(static_cast<std::size_t>(world_.n_pes()));
    }
    DirectCounters& t = direct_tele_[static_cast<std::size_t>(rank)];
    if (t.puts == nullptr) {
      auto& reg = obs::registry();
      t.puts = &reg.counter(rank, "direct.puts");
      t.gets = &reg.counter(rank, "direct.gets");
      t.iputs = &reg.counter(rank, "direct.iputs");
      t.igets = &reg.counter(rank, "direct.igets");
      t.scatters = &reg.counter(rank, "direct.scatters");
      t.elided_msgs = &reg.counter(rank, "direct.elided_msgs");
      t.elided_bytes = &reg.counter(rank, "direct.elided_bytes");
    }
    return t;
  }

  shmem::World& world_;
  std::size_t seg_bytes_;
  bool intra_node_direct_ = false;
  std::vector<DirectCounters> direct_tele_;
};

}  // namespace caf
