// GasnetConduit — the baseline UHCAF communication layer (Table I).
//
// GASNet provides one-sided put/get and active messages but no remote
// atomics and no strided transfers, so:
//
//   * 1-D strided transfers loop contiguous nbi puts / blocking gets in
//     software;
//   * remote atomics are emulated with AM round-trips whose handler
//     executes the read-modify-write on the target CPU (serializing there —
//     the contention behaviour that makes Figure 8's GASNet locks slower);
//   * collective allocation is replayed through a shared log (GASNet has no
//     symmetric allocator; UHCAF manages the segment itself).
#pragma once

#include <memory>
#include <vector>

#include "caf/conduit.hpp"
#include "gasnet/gasnet.hpp"
#include "shmem/heap.hpp"

namespace caf {

class GasnetConduit final : public Conduit {
 public:
  explicit GasnetConduit(gasnet::World& world);

  int rank() const override { return world_.mynode(); }
  int nranks() const override { return world_.nodes(); }
  std::byte* segment(int rank) override { return world_.seg(rank); }
  std::size_t segment_bytes() const override { return seg_bytes_; }
  const net::SwProfile& sw() const override { return world_.domain().sw(); }
  sim::Engine& engine() override { return world_.engine(); }
  bool hw_strided() const override { return false; }
  bool native_amo() const override { return false; }

  std::uint64_t allocate(std::size_t bytes) override;
  void deallocate(std::uint64_t offset) override;

  void poke(int rank, std::uint64_t off, const void* src, std::size_t n,
            sim::Time t) override {
    world_.domain().poke(rank, off, src, n, t);
  }

  std::int64_t do_amo_swap(int rank, std::uint64_t off, std::int64_t v) override {
    return am_amo(kSwap, rank, off, v, 0);
  }
  std::int64_t do_amo_cswap(int rank, std::uint64_t off, std::int64_t cond,
                         std::int64_t v) override {
    return am_amo(kCswap, rank, off, v, cond);
  }
  std::int64_t do_amo_fadd(int rank, std::uint64_t off, std::int64_t v) override {
    return am_amo(kAdd, rank, off, v, 0);
  }
  std::int64_t do_amo_fand(int rank, std::uint64_t off, std::int64_t m) override {
    return am_amo(kAnd, rank, off, m, 0);
  }
  std::int64_t do_amo_for(int rank, std::uint64_t off, std::int64_t m) override {
    return am_amo(kOr, rank, off, m, 0);
  }
  std::int64_t do_amo_fxor(int rank, std::uint64_t off, std::int64_t m) override {
    return am_amo(kXor, rank, off, m, 0);
  }

  void wait_until(std::uint64_t off, Cmp cmp, std::int64_t value) override;
  void do_barrier() override { world_.barrier(); }

  bool direct_reachable(int target) override {
    return node_transport_reachable(target);
  }

  fabric::Domain* rma_domain() override { return &world_.domain(); }

  gasnet::World& world() { return world_; }

 protected:
  void do_put(int rank, std::uint64_t dst_off, const void* src, std::size_t n,
              bool nbi) override {
    if (nbi) {
      world_.put_nbi(rank, dst_off, src, n);
    } else {
      // UHCAF-over-GASNet uses nbi puts for RMA and syncs at fences; the
      // blocking flavour here still has only local-completion semantics to
      // match the SHMEM conduit's putmem (CAF inserts quiet itself).
      world_.put_nbi(rank, dst_off, src, n);
      // Charge the blocking call's extra bookkeeping.
      world_.engine().advance(sw().put_overhead - sw().per_msg_gap);
    }
  }
  void do_get(void* dst, int rank, std::uint64_t src_off,
              std::size_t n) override {
    world_.get(dst, rank, src_off, n);
  }
  void do_iput(int rank, std::uint64_t dst_off, std::ptrdiff_t dst_stride,
               const void* src, std::ptrdiff_t src_stride,
               std::size_t elem_bytes, std::size_t nelems) override;
  void do_iget(void* dst, std::ptrdiff_t dst_stride, int rank,
               std::uint64_t src_off, std::ptrdiff_t src_stride,
               std::size_t elem_bytes, std::size_t nelems) override;
  void do_put_scatter(int rank, const fabric::ScatterRec* recs,
                      std::size_t nrecs, const void* payload,
                      std::size_t payload_bytes) override {
    world_.put_scatter_nbi(rank, recs, nrecs, payload, payload_bytes);
  }
  void do_quiet() override { world_.wait_syncnbi_puts(); }

 private:
  enum AmoKind : std::uint64_t { kSwap, kCswap, kAdd, kAnd, kOr, kXor };

  std::int64_t am_amo(AmoKind kind, int rank, std::uint64_t off,
                      std::int64_t operand, std::int64_t cond);

  gasnet::World& world_;
  std::size_t seg_bytes_;
  int amo_handler_ = -1;

  // Shared collective-allocation replay log (same discipline as shmalloc).
  shmem::FreeListAllocator allocator_;
  struct AllocOp {
    bool is_free;
    std::uint64_t arg;
    std::uint64_t result;  // offset, or kAllocFailed when the alloc failed
  };
  static constexpr std::uint64_t kAllocFailed = ~std::uint64_t{0};
  std::vector<AllocOp> alloc_log_;
  std::vector<std::size_t> alloc_cursor_;
};

}  // namespace caf
