// Packed 64-bit remote pointers (paper §IV-D).
//
// The MCS lock queue links qnodes that live in *other images'* managed
// buffers, so the `tail` and `next` fields must name (image, offset) pairs
// compactly enough to be updated with 8-byte remote atomics. The paper packs
// them as: 20 bits image index | 36 bits offset within the remote-accessible
// buffer | 8 bits flags.
#pragma once

#include <cstdint>

namespace caf {

class RemotePtr {
 public:
  static constexpr int kImageBits = 20;
  static constexpr int kOffsetBits = 36;
  static constexpr int kFlagBits = 8;
  static constexpr std::uint64_t kMaxImage = (1ull << kImageBits) - 1;
  static constexpr std::uint64_t kMaxOffset = (1ull << kOffsetBits) - 1;
  static constexpr std::uint64_t kMaxFlags = (1ull << kFlagBits) - 1;

  /// Flag bit 0 marks a live pointer, so that a zero word is "null" even
  /// though (image 0, offset 0) is a legal location.
  static constexpr std::uint8_t kValidFlag = 0x01;

  constexpr RemotePtr() = default;  // null

  /// image is 0-based here (the runtime converts CAF 1-based image indices).
  constexpr RemotePtr(int image, std::uint64_t offset, std::uint8_t flags = 0)
      : bits_((static_cast<std::uint64_t>(image) << (kOffsetBits + kFlagBits)) |
              (offset << kFlagBits) | flags | kValidFlag) {}

  static constexpr RemotePtr from_bits(std::uint64_t bits) {
    RemotePtr p;
    p.bits_ = bits;
    return p;
  }

  constexpr std::uint64_t bits() const { return bits_; }
  constexpr bool is_null() const { return (bits_ & kValidFlag) == 0; }
  constexpr explicit operator bool() const { return !is_null(); }

  constexpr int image() const {
    return static_cast<int>(bits_ >> (kOffsetBits + kFlagBits));
  }
  constexpr std::uint64_t offset() const {
    return (bits_ >> kFlagBits) & kMaxOffset;
  }
  constexpr std::uint8_t flags() const {
    return static_cast<std::uint8_t>(bits_ & kMaxFlags);
  }

  friend constexpr bool operator==(RemotePtr a, RemotePtr b) {
    return a.bits_ == b.bits_;
  }

 private:
  std::uint64_t bits_ = 0;
};

}  // namespace caf
