// Packed 64-bit remote pointers (paper §IV-D).
//
// The MCS lock queue links qnodes that live in *other images'* managed
// buffers, so the `tail` and `next` fields must name (image, offset) pairs
// compactly enough to be updated with 8-byte remote atomics. The paper packs
// them as: 20 bits image index | 36 bits offset within the remote-accessible
// buffer | 8 bits flags.
#pragma once

#include <cstdint>

namespace caf {

class RemotePtr {
 public:
  static constexpr int kImageBits = 20;
  static constexpr int kOffsetBits = 36;
  static constexpr int kFlagBits = 8;
  static constexpr std::uint64_t kMaxImage = (1ull << kImageBits) - 1;
  static constexpr std::uint64_t kMaxOffset = (1ull << kOffsetBits) - 1;
  static constexpr std::uint64_t kMaxFlags = (1ull << kFlagBits) - 1;

  /// Flag bit 0 marks a live pointer, so that a zero word is "null" even
  /// though (image 0, offset 0) is a legal location.
  static constexpr std::uint8_t kValidFlag = 0x01;

  /// Flag bits 1-7 carry a 7-bit acquisition epoch. The failure-recovery
  /// protocol stamps each qnode pointer with its owner's epoch counter, so
  /// a stale pointer to a *reused* qnode slot never compares equal to the
  /// current acquisition's pointer (CAS and queue-repair walks match exact
  /// bits). Wraps at 128 — ancient stale pointers are already fenced off by
  /// the quarantine delay on qnode reuse.
  static constexpr int kEpochBits = kFlagBits - 1;
  static constexpr std::uint8_t kMaxEpoch = (1u << kEpochBits) - 1;

  constexpr RemotePtr() = default;  // null

  /// image is 0-based here (the runtime converts CAF 1-based image indices).
  constexpr RemotePtr(int image, std::uint64_t offset, std::uint8_t flags = 0)
      : bits_((static_cast<std::uint64_t>(image) << (kOffsetBits + kFlagBits)) |
              (offset << kFlagBits) | flags | kValidFlag) {}

  static constexpr RemotePtr from_bits(std::uint64_t bits) {
    RemotePtr p;
    p.bits_ = bits;
    return p;
  }

  constexpr std::uint64_t bits() const { return bits_; }
  constexpr bool is_null() const { return (bits_ & kValidFlag) == 0; }
  constexpr explicit operator bool() const { return !is_null(); }

  constexpr int image() const {
    return static_cast<int>(bits_ >> (kOffsetBits + kFlagBits));
  }
  constexpr std::uint64_t offset() const {
    return (bits_ >> kFlagBits) & kMaxOffset;
  }
  constexpr std::uint8_t flags() const {
    return static_cast<std::uint8_t>(bits_ & kMaxFlags);
  }
  constexpr std::uint8_t epoch() const {
    return static_cast<std::uint8_t>(flags() >> 1);
  }

  /// Builds a pointer carrying `epoch` in flag bits 1-7 (valid bit set).
  static constexpr RemotePtr with_epoch(int image, std::uint64_t offset,
                                        std::uint8_t epoch) {
    return RemotePtr(image, offset,
                     static_cast<std::uint8_t>((epoch & kMaxEpoch) << 1));
  }

  /// True when both pointers name the same (image, offset), regardless of
  /// flag/epoch bits — used to recognize a qnode slot across epochs.
  friend constexpr bool same_location(RemotePtr a, RemotePtr b) {
    return a && b && a.image() == b.image() && a.offset() == b.offset();
  }

  friend constexpr bool operator==(RemotePtr a, RemotePtr b) {
    return a.bits_ == b.bits_;
  }

 private:
  std::uint64_t bits_ = 0;
};

}  // namespace caf
