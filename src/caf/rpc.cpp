#include "caf/rpc.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <vector>

#include "caf/gasnet_conduit.hpp"
#include "fabric/domain.hpp"
#include "gasnet/gasnet.hpp"
#include "net/fabric.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"

namespace caf {

// ---------------------------------------------------------------------------
// Target-side handler context
// ---------------------------------------------------------------------------

namespace {

// The simulation is single-threaded: one handler runs at a time, so the
// active handler's context lives in plain globals, saved/restored for
// nesting (a fiber-context drain can run a handler while a continuation is
// already on the stack).
Runtime* g_target_rt = nullptr;
int g_target_image = 0;
sim::Time g_charge = 0;

struct TargetScope {
  Runtime* prev_rt;
  int prev_image;
  sim::Time prev_charge;

  TargetScope(Runtime* rt, int image)
      : prev_rt(g_target_rt),
        prev_image(g_target_image),
        prev_charge(g_charge) {
    g_target_rt = rt;
    g_target_image = image;
    g_charge = 0;
  }
  sim::Time charge() const { return g_charge; }
  ~TargetScope() {
    g_target_rt = prev_rt;
    g_target_image = prev_image;
    g_charge = prev_charge;
  }
};

}  // namespace

Runtime* rpc_target_runtime() { return g_target_rt; }
int rpc_target_image() { return g_target_image; }
void rpc_charge(sim::Time ns) { g_charge += ns; }

namespace rpc_detail {
void add_charge(sim::Time ns) { g_charge += ns; }
}  // namespace rpc_detail

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

RpcEngine::RpcEngine(Runtime& rt, const RpcOptions& opts)
    : rt_(rt), conduit_(rt.conduit()), opts_(opts) {
  if (opts_.slot_bytes <= kHeaderBytes || opts_.slots_per_pair < 1) {
    throw std::invalid_argument("RpcOptions: slot_bytes/slots_per_pair");
  }
  const bool is_gasnet = dynamic_cast<GasnetConduit*>(&conduit_) != nullptr;
  switch (opts_.transport) {
    case RpcOptions::Transport::kAm:
      if (!is_gasnet) {
        throw std::logic_error(
            "RpcOptions::Transport::kAm requires the GASNet conduit");
      }
      am_ = true;
      break;
    case RpcOptions::Transport::kMailbox:
      am_ = false;
      break;
    case RpcOptions::Transport::kAuto:
      am_ = is_gasnet;
      break;
  }
  per_.resize(static_cast<std::size_t>(conduit_.nranks()));
}

RpcEngine::~RpcEngine() = default;

int RpcEngine::self() const { return conduit_.rank(); }

void RpcEngine::init_symmetric() {
  const int n = conduit_.nranks();
  const std::size_t ring_bytes = static_cast<std::size_t>(n) *
                                 static_cast<std::size_t>(opts_.slots_per_pair) *
                                 opts_.slot_bytes;
  // Collective allocations — identical sequence on every image. The mailbox
  // area is allocated even on the AM transport (it is small and keeps the
  // two transports' heap layouts — and thus every other offset — identical,
  // so a transport A/B comparison isolates the transport).
  mbox_off_ = conduit_.allocate(ring_bytes);
  bell_off_ = conduit_.allocate(sizeof(std::int64_t));
  ack_off_ = conduit_.allocate(static_cast<std::size_t>(n) * 8);

  const int me = self();
  std::byte* seg = conduit_.segment(me);
  std::memset(seg + mbox_off_, 0, ring_bytes);
  std::memset(seg + bell_off_, 0, sizeof(std::int64_t));
  std::memset(seg + ack_off_, 0, static_cast<std::size_t>(n) * 8);

  PerPe& st = per_[static_cast<std::size_t>(me)];
  st.sent.assign(static_cast<std::size_t>(n), 0);
  st.consumed.assign(static_cast<std::size_t>(n), 0);
  auto& reg = obs::registry();
  st.c_sent = &reg.counter(me, "rpc.sent");
  st.c_ff = &reg.counter(me, "rpc.ff_sent");
  st.c_handled = &reg.counter(me, "rpc.handled");
  st.c_replies = &reg.counter(me, "rpc.replies");
  st.c_failed = &reg.counter(me, "rpc.failed");
  st.c_parked_drains = &reg.counter(me, "rpc.parked_drains");

  if (am_ && am_handler_ < 0) {
    auto& world = static_cast<GasnetConduit&>(conduit_).world();
    am_handler_ = world.register_handler(
        [this](const gasnet::Token& tok, std::span<const std::byte> payload,
               std::uint64_t arg0, std::uint64_t arg1) -> std::uint64_t {
          handle_am(tok, payload.data(), payload.size(), arg0, arg1);
          return 0;
        });
  }
}

void RpcEngine::bind_local(rpc_detail::FutureCore& core, int target0) {
  const int me = self();
  core.owner = me;
  core.rt = &rt_;
  core.sink = &per_[static_cast<std::size_t>(me)].ready;
  core.target = target0;
}

std::int64_t RpcEngine::read_bell(int image) {
  std::int64_t v;
  std::memcpy(&v, conduit_.segment(image) + bell_off_, sizeof(v));
  // The failure hook may have sentinel-bumped the cell while a waiter was
  // registered on it; the true count is the low part.
  if (v >= Runtime::kSentinelThreshold) v -= Runtime::kFailedSentinel;
  return v;
}

void RpcEngine::set_parked(int image, bool on) {
  per_[static_cast<std::size_t>(image)].parked = on;
}

void RpcEngine::fail_outstanding(PerPe& st, rpc_detail::Outstanding rec) {
  ++*st.c_failed;
  rec.remote->fulfill(kStatFailedImage);
  rec.op->fulfill(kStatFailedImage);
}

int RpcEngine::sweep_failures(int image) {
  PerPe& st = per_[static_cast<std::size_t>(image)];
  sim::Engine& eng = conduit_.engine();
  if (eng.declared_count() == 0 || st.outstanding.empty()) return 0;
  int failed = 0;
  for (auto it = st.outstanding.begin(); it != st.outstanding.end();) {
    if (it->second.target0 >= 0 && eng.pe_declared(it->second.target0)) {
      rpc_detail::Outstanding rec = std::move(it->second);
      it = st.outstanding.erase(it);
      fail_outstanding(st, std::move(rec));
      ++failed;
    } else {
      ++it;
    }
  }
  return failed;
}

void RpcEngine::run_ready(int image) {
  PerPe& st = per_[static_cast<std::size_t>(image)];
  if (st.in_ready) return;  // the outer loop will pick up new arrivals
  st.in_ready = true;
  while (!st.ready.empty()) {
    std::vector<std::function<void()>> batch = std::move(st.ready);
    st.ready.clear();
    for (auto& cb : batch) cb();
  }
  st.in_ready = false;
}

void RpcEngine::progress() {
  sim::Engine& eng = conduit_.engine();
  if (eng.current_fiber() == nullptr) return;  // not attributable to an image
  const int me = self();
  drain(me, /*fiber=*/true, 0);
  run_ready(me);
}

// ---------------------------------------------------------------------------
// Request submission
// ---------------------------------------------------------------------------

void RpcEngine::submit(int target0, std::uint64_t fn, const std::byte* blob,
                       std::size_t bytes, rpc_detail::Outstanding rec,
                       bool ff) {
  if (target0 < 0 || target0 >= conduit_.nranks()) {
    throw std::out_of_range("caf::rpc: bad target image");
  }
  if (bytes > payload_capacity()) {
    throw std::length_error("caf::rpc: request blob exceeds slot capacity");
  }
  const int me = self();
  PerPe& st = per_[static_cast<std::size_t>(me)];
  obs::Span sp(obs::Cat::kRpcSend, bytes,
               static_cast<std::uint32_t>(target0));
  sim::Engine& eng = conduit_.engine();
  if (eng.pe_declared(target0)) {
    if (!ff) fail_outstanding(st, std::move(rec));
    return;
  }
  const std::uint64_t id = ++st.next_req;
  if (!ff) st.outstanding.emplace(id, std::move(rec));
  ++*(ff ? st.c_ff : st.c_sent);
  try {
    if (am_) {
      auto& world = static_cast<GasnetConduit&>(conduit_).world();
      const std::uint64_t wire_id =
          id | (ff ? (std::uint64_t{1} << 63) : std::uint64_t{0});
      world.am_request(target0, am_handler_, wire_id, fn, blob, bytes);
    } else {
      rpc_detail::SlotHeader hdr;
      hdr.fn = fn;
      hdr.req_id = id;
      hdr.bytes = static_cast<std::uint32_t>(bytes);
      hdr.flags = ff ? rpc_detail::kFlagFf : 0;
      mailbox_send(me, target0, hdr, blob);
    }
  } catch (const fabric::PeerFailedError&) {
    // The transport pronounced delivery failed (dead target or exhausted
    // retries): surface through the future; ff requests vanish silently.
    if (!ff) {
      auto it = st.outstanding.find(id);
      if (it != st.outstanding.end()) {
        rpc_detail::Outstanding dead = std::move(it->second);
        st.outstanding.erase(it);
        fail_outstanding(st, std::move(dead));
      }
    }
  }
}

void RpcEngine::mailbox_send(int me, int target0,
                             const rpc_detail::SlotHeader& hdr,
                             const std::byte* blob) {
  PerPe& st = per_[static_cast<std::size_t>(me)];
  const std::uint64_t k = static_cast<std::uint64_t>(opts_.slots_per_pair);
  const std::uint64_t seq = st.sent[static_cast<std::size_t>(target0)] + 1;

  // Ring backpressure: the slot this sequence lands in is free once the
  // target's cumulative ack covers seq - k. Park while waiting — the wait
  // is bounded by the target's own progress, and incoming requests must
  // keep draining meanwhile or two mutually-flooding images deadlock.
  const std::uint64_t ack_cell =
      ack_off_ + static_cast<std::uint64_t>(target0) * 8;
  const auto read_acked = [&]() {
    std::int64_t acked;
    std::memcpy(&acked, conduit_.segment(me) + ack_cell, sizeof(acked));
    if (acked >= Runtime::kSentinelThreshold) {
      acked -= Runtime::kFailedSentinel;
    }
    return acked;
  };
  if (seq > static_cast<std::uint64_t>(read_acked()) + k) {
    // Drain-then-park, like every other progress point: requests that
    // arrived while this image was running found it unparked (their
    // doorbell completions did nothing), so parking without draining
    // would strand them — and deadlock two mutually-flooding images.
    drain(me, /*fiber=*/true, 0);
    if (seq > static_cast<std::uint64_t>(read_acked()) + k) {
      st.parked = true;
      const auto need = static_cast<std::int64_t>(seq - k);
      if (rt_.resilient_) {
        (void)rt_.wait_fault(ack_cell, Cmp::kGe, need);
      } else {
        conduit_.wait_until(ack_cell, Cmp::kGe, need);
      }
      st.parked = false;
      if (conduit_.engine().pe_declared(target0)) {
        throw fabric::PeerFailedError("rpc_send", me, target0, 0,
                                      conduit_.engine().now());
      }
    }
  }

  // put + quiet + fetch-add: the OpenSHMEM signaling idiom. The doorbell
  // bump is ordered after the slot payload (quiet), so one doorbell scan
  // always finds a fully-delivered request.
  rpc_detail::SlotHeader wire = hdr;
  wire.seq = seq;
  std::vector<std::byte> buf(kHeaderBytes + hdr.bytes);
  std::memcpy(buf.data(), &wire, kHeaderBytes);
  if (hdr.bytes != 0) std::memcpy(buf.data() + kHeaderBytes, blob, hdr.bytes);
  // Slot indexing is [src][slot] in the *target's* ring area, so the source
  // rank (me) picks the row at the destination.
  const std::uint64_t dst_off =
      mbox_off_ + (static_cast<std::uint64_t>(me) * k + (seq - 1) % k) *
                      opts_.slot_bytes;
  conduit_.put(target0, dst_off, buf.data(), buf.size(), /*nbi=*/false);
  conduit_.quiet();
  st.sent[static_cast<std::size_t>(target0)] = seq;
  sim::Engine& eng = conduit_.engine();
  if (conduit_.native_amo()) {
    (void)conduit_.amo_fadd(target0, bell_off_, 1);
    // The fetch-add has returned, so the bump has landed at the target. A
    // target parked at a progress point cannot poll — drain it from the
    // event loop (this is the "no progress thread" substitute: the signal
    // completion itself carries the progress obligation).
    eng.schedule(eng.now(), [this, target0]() {
      PerPe& ts = per_[static_cast<std::size_t>(target0)];
      sim::Engine& e = conduit_.engine();
      if (ts.parked && !e.pe_failed(target0)) {
        ++*ts.c_parked_drains;
        drain(target0, /*fiber=*/false, e.sim_now());
      }
    });
  } else {
    // Emulated AMOs (ARMCI's mutex-hosted get/put Rmw) span several fabric
    // events, so they race with the single-event scheduler pokes the
    // reply/failure paths apply to the same bell cell — a poke landing
    // between the emulation's get and put is silently overwritten, and a
    // lost bump wedges the idle accounting. Ship the doorbell as an 8-byte
    // signal put instead and fold the increment into one scheduler event
    // at delivery, which is DES-atomic against every other bell writer.
    fabric::Domain* d = conduit_.rma_domain();
    const net::PutCompletion pc = d->fabric().submit_reply(
        me, target0, sizeof(std::int64_t), conduit_.sw(), eng.now());
    if (pc.ok) {
      eng.schedule(pc.delivered, [this, target0]() {
        sim::Engine& e = conduit_.engine();
        if (e.pe_failed(target0)) return;
        bump_bell(target0, e.sim_now());
        PerPe& ts = per_[static_cast<std::size_t>(target0)];
        if (ts.parked) {
          ++*ts.c_parked_drains;
          drain(target0, /*fiber=*/false, e.sim_now());
        }
      });
    }
  }
}

// ---------------------------------------------------------------------------
// Target-side draining / execution
// ---------------------------------------------------------------------------

void RpcEngine::drain(int t, bool fiber, sim::Time at) {
  if (am_) return;  // AM transport: the fabric delivers straight to handlers
  PerPe& st = per_[static_cast<std::size_t>(t)];
  if (st.draining || st.sent.empty()) return;
  st.draining = true;
  const int n = conduit_.nranks();
  const std::uint64_t k = static_cast<std::uint64_t>(opts_.slots_per_pair);
  const std::byte* seg = conduit_.segment(t);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    const std::int64_t bell = read_bell(t);
    if (static_cast<std::uint64_t>(bell) <= st.handled + st.replies_seen) {
      break;  // every signaled request/reply already processed
    }
    for (int s = 0; s < n; ++s) {
      bool any = false;
      while (true) {
        const std::uint64_t next = st.consumed[static_cast<std::size_t>(s)] + 1;
        const std::uint64_t slot_off =
            mbox_off_ +
            (static_cast<std::uint64_t>(s) * k + (next - 1) % k) *
                opts_.slot_bytes;
        rpc_detail::SlotHeader hdr;
        std::memcpy(&hdr, seg + slot_off, kHeaderBytes);
        if (hdr.seq != next) break;
        std::vector<std::byte> payload(hdr.bytes);
        if (hdr.bytes != 0) {
          std::memcpy(payload.data(), seg + slot_off + kHeaderBytes,
                      hdr.bytes);
        }
        st.consumed[static_cast<std::size_t>(s)] = next;
        ++st.handled;
        ++*st.c_handled;
        exec_request(t, s, hdr, payload.data(), fiber, at);
        any = true;
        progressed = true;
      }
      if (any) {
        const sim::Time ack_at =
            fiber ? conduit_.engine().now() : std::max(at, st.proc_free);
        send_ack(t, s,
                 st.consumed[static_cast<std::size_t>(s)], ack_at);
      }
    }
  }
  st.draining = false;
}

void RpcEngine::exec_request(int t, int src,
                             const rpc_detail::SlotHeader& hdr,
                             const std::byte* payload, bool fiber,
                             sim::Time at) {
  auto tramp = reinterpret_cast<rpc_detail::Trampoline>(
      static_cast<std::uintptr_t>(hdr.fn));
  const bool ff = (hdr.flags & rpc_detail::kFlagFf) != 0;
  std::byte ret[kMaxRet];
  std::size_t ret_len = 0;
  sim::Time charge = 0;
  PerPe& st = per_[static_cast<std::size_t>(t)];
  if (fiber) {
    // Draining at an explicit progress point: the handler runs on this
    // image's fiber and its CPU time advances the image's clock.
    obs::Span sp(obs::Cat::kRpcExec, hdr.bytes,
                 static_cast<std::uint32_t>(src));
    {
      TargetScope scope(&rt_, t + 1);
      ret_len = tramp(rt_, payload, ret, sizeof(ret));
      charge = scope.charge();
    }
    sim::Engine& eng = conduit_.engine();
    eng.advance(conduit_.sw().handler_cpu + charge);
    if (!ff) send_reply(t, src, hdr.req_id, ret, ret_len, eng.now());
  } else {
    // Parked-target drain from the event loop: serialize handler CPU on the
    // image's own ledger. (The cost hides inside the target's wait stall —
    // the documented approximation of handler-CPU accounting while parked;
    // the ledger still defers the *replies* by the full handler cost.)
    const sim::Time start = std::max(at, st.proc_free);
    {
      TargetScope scope(&rt_, t + 1);
      ret_len = tramp(rt_, payload, ret, sizeof(ret));
      charge = scope.charge();
    }
    const sim::Time done = start + conduit_.sw().handler_cpu + charge;
    st.proc_free = done;
    if (!ff) send_reply(t, src, hdr.req_id, ret, ret_len, done);
  }
}

void RpcEngine::handle_am(const gasnet::Token& tok, const std::byte* payload,
                          std::size_t payload_bytes, std::uint64_t wire_id,
                          std::uint64_t fn) {
  (void)payload_bytes;
  const int t = tok.dst_node;
  const int src = tok.src_node;
  sim::Engine& eng = conduit_.engine();
  if (eng.pe_failed(t)) return;  // a dead CPU runs no handlers
  PerPe& st = per_[static_cast<std::size_t>(t)];
  const bool ff = (wire_id >> 63) != 0;
  const std::uint64_t req_id = wire_id & ~(std::uint64_t{1} << 63);
  auto tramp = reinterpret_cast<rpc_detail::Trampoline>(
      static_cast<std::uintptr_t>(fn));
  std::byte ret[kMaxRet];
  std::size_t ret_len = 0;
  sim::Time charge = 0;
  {
    TargetScope scope(&rt_, t + 1);
    ret_len = tramp(rt_, payload, ret, sizeof(ret));
    charge = scope.charge();
  }
  ++st.handled;
  ++*st.c_handled;
  if (!ff) {
    // The fabric's submit_am already charged sw.handler_cpu on the target's
    // handler unit (tok.when is handler start); user-declared charge delays
    // the reply further.
    send_reply(t, src, req_id, ret, ret_len,
               tok.when + conduit_.sw().handler_cpu + charge);
  }
}

// ---------------------------------------------------------------------------
// Replies & acks (control-channel messages)
// ---------------------------------------------------------------------------

void RpcEngine::send_ack(int t, int src, std::uint64_t consumed,
                         sim::Time at) {
  fabric::Domain* d = conduit_.rma_domain();
  const net::PutCompletion pc = d->fabric().submit_reply(
      t, src, sizeof(std::int64_t), conduit_.sw(), at);
  if (!pc.ok) return;
  sim::Engine& eng = conduit_.engine();
  const std::uint64_t cell = ack_off_ + static_cast<std::uint64_t>(t) * 8;
  const auto val = static_cast<std::int64_t>(consumed);
  eng.schedule(pc.delivered, [this, src, cell, val]() {
    sim::Engine& e = conduit_.engine();
    if (e.pe_failed(src)) return;
    // Monotonic max: a retransmitted older ack must not regress the cell.
    std::int64_t cur;
    std::memcpy(&cur, conduit_.segment(src) + cell, sizeof(cur));
    if (cur >= Runtime::kSentinelThreshold) cur -= Runtime::kFailedSentinel;
    const std::int64_t v = std::max(cur, val);
    conduit_.poke(src, cell, &v, sizeof(v), e.sim_now());
  });
}

void RpcEngine::bump_bell(int image, sim::Time at) {
  std::int64_t cur;
  std::memcpy(&cur, conduit_.segment(image) + bell_off_, sizeof(cur));
  const std::int64_t v = cur + 1;  // an additive sentinel survives the bump
  conduit_.poke(image, bell_off_, &v, sizeof(v), at);
}

void RpcEngine::send_reply(int t, int src, std::uint64_t req_id,
                           const std::byte* ret_bytes, std::size_t ret_len,
                           sim::Time at) {
  fabric::Domain* d = conduit_.rma_domain();
  const net::PutCompletion pc = d->fabric().submit_reply(
      t, src, ret_len + kReplyOverhead, conduit_.sw(), at);
  if (!pc.ok) return;  // dead initiator, or retries exhausted: reply lost
  std::vector<std::byte> ret(ret_bytes, ret_bytes + ret_len);
  sim::Engine& eng = conduit_.engine();
  eng.schedule(pc.delivered, [this, src, req_id, ret = std::move(ret)]() {
    sim::Engine& e = conduit_.engine();
    if (e.pe_failed(src)) return;
    PerPe& st = per_[static_cast<std::size_t>(src)];
    ++st.replies_seen;
    ++*st.c_replies;
    auto it = st.outstanding.find(req_id);
    if (it != st.outstanding.end()) {
      rpc_detail::Outstanding rec = std::move(it->second);
      st.outstanding.erase(it);
      if (!rec.op->ready) {
        if (rec.set_value) rec.set_value(ret.data(), ret.size());
        rec.remote->fulfill(kStatOk);
        rec.op->fulfill(kStatOk);
      }
    }
    // Wake the initiator if it is parked on the doorbell.
    bump_bell(src, e.sim_now());
  });
}

// ---------------------------------------------------------------------------
// Waiting
// ---------------------------------------------------------------------------

void RpcEngine::wait(rpc_detail::FutureCore& core) {
  const int me = self();
  assert(core.owner == me && "a future must be waited on its owning image");
  PerPe& st = per_[static_cast<std::size_t>(me)];
  sim::Engine& eng = conduit_.engine();
  obs::Span sp(obs::Cat::kRpcWait);
  while (true) {
    drain(me, /*fiber=*/true, 0);
    run_ready(me);
    if (core.ready) return;
    if (eng.declared_count() > 0) {
      sweep_failures(me);
      run_ready(me);
      if (core.ready) return;
    }
    const std::int64_t seen = read_bell(me);
    if (static_cast<std::uint64_t>(seen) > st.handled + st.replies_seen) {
      continue;  // a signal landed between the drain and the bell read
    }
    // Park on the doorbell: replies, new requests, and (via the failure
    // hook's sentinel bump in resilient mode) peer death all ring it.
    st.parked = true;
    if (rt_.resilient_) {
      (void)rt_.wait_fault(bell_off_, Cmp::kGe, seen + 1);
    } else {
      conduit_.wait_until(bell_off_, Cmp::kGe, seen + 1);
    }
    st.parked = false;
  }
}

void rpc_wait_core(Runtime& rt, rpc_detail::FutureCore& core) {
  RpcEngine* eng = rt.rpc_engine();
  if (eng == nullptr) {
    throw std::logic_error("caf::future::wait(): RPC engine not enabled");
  }
  eng->wait(core);
}

}  // namespace caf
