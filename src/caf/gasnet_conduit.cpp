#include "caf/gasnet_conduit.hpp"

#include <cstring>
#include <new>
#include <stdexcept>

namespace caf {

namespace {
// User allocations start past the conduit's own barrier flags, aligned.
constexpr std::uint64_t user_base() {
  return (gasnet::World::reserved_bytes() + 15) & ~std::uint64_t{15};
}
}  // namespace

GasnetConduit::GasnetConduit(gasnet::World& world)
    : world_(world),
      seg_bytes_(world.seg_bytes()),
      allocator_(user_base(), world.seg_bytes() - user_base()) {
  alloc_cursor_.assign(world_.nodes(), 0);

  // The AMO-emulation handler: runs on the target CPU, performs the RMW on
  // the target's segment at the handler's virtual time, replies with the
  // fetched value. poke() fires the write hook so spinning waiters wake.
  amo_handler_ = world_.register_handler(
      [this](const gasnet::Token& tok, std::span<const std::byte> payload,
             std::uint64_t off, std::uint64_t packed_kind) -> std::uint64_t {
        const auto kind = static_cast<AmoKind>(packed_kind);
        // payload = [operand, cond] as int64s; target = token destination,
        // which is the node the handler runs on. We recover it from the
        // payload's trailing rank field.
        std::int64_t operand = 0, cond = 0;
        std::int64_t target = 0;
        std::memcpy(&operand, payload.data(), 8);
        std::memcpy(&cond, payload.data() + 8, 8);
        std::memcpy(&target, payload.data() + 16, 8);
        std::int64_t old = 0;
        std::memcpy(&old, world_.seg(static_cast<int>(target)) + off, 8);
        std::int64_t neu = old;
        bool store = true;
        switch (kind) {
          case kSwap: neu = operand; break;
          case kCswap:
            if (old == cond) neu = operand; else store = false;
            break;
          case kAdd: neu = old + operand; break;
          case kAnd: neu = old & operand; break;
          case kOr: neu = old | operand; break;
          case kXor: neu = old ^ operand; break;
        }
        if (store) {
          world_.domain().poke(static_cast<int>(target), off, &neu, 8,
                               tok.when);
        }
        return static_cast<std::uint64_t>(old);
      });
}

std::int64_t GasnetConduit::am_amo(AmoKind kind, int rank, std::uint64_t off,
                                   std::int64_t operand, std::int64_t cond) {
  std::int64_t payload[3] = {operand, cond, rank};
  return static_cast<std::int64_t>(world_.am_request_reply(
      rank, amo_handler_, off, static_cast<std::uint64_t>(kind), payload,
      sizeof payload));
}

std::uint64_t GasnetConduit::allocate(std::size_t bytes) {
  const int me = world_.mynode();
  const std::size_t cursor = alloc_cursor_[me];
  if (cursor == alloc_log_.size()) {
    auto got = allocator_.allocate(bytes);
    // Failures are logged too (result = kAllocFailed) so replaying nodes
    // observe the same failure at the same op index; later, smaller
    // allocations still succeed.
    alloc_log_.push_back({false, bytes, got ? *got : kAllocFailed});
  }
  alloc_cursor_[me] = cursor + 1;
  const AllocOp op = alloc_log_[cursor];  // copy: log grows during barrier
  if (op.is_free || op.arg != bytes) {
    throw std::logic_error("GasnetConduit::allocate: collective mismatch");
  }
  if (op.result == kAllocFailed) {
    throw shmem::HeapExhaustedError("GasnetConduit::allocate", bytes,
                                    allocator_.bytes_in_use(),
                                    allocator_.capacity());
  }
  world_.barrier();
  return op.result;
}

void GasnetConduit::deallocate(std::uint64_t offset) {
  const int me = world_.mynode();
  const std::size_t cursor = alloc_cursor_[me]++;
  if (cursor == alloc_log_.size()) {
    allocator_.release(offset);
    alloc_log_.push_back({true, offset, 0});
  }
  const AllocOp op = alloc_log_[cursor];
  if (!op.is_free || op.arg != offset) {
    throw std::logic_error("GasnetConduit::deallocate: collective mismatch");
  }
  world_.barrier();
}

void GasnetConduit::do_iput(int rank, std::uint64_t dst_off,
                         std::ptrdiff_t dst_stride, const void* src,
                         std::ptrdiff_t src_stride, std::size_t elem_bytes,
                         std::size_t nelems) {
  // Software loop of nbi puts (GASNet has no strided API).
  const auto* s = static_cast<const std::byte*>(src);
  for (std::size_t i = 0; i < nelems; ++i) {
    world_.put_nbi(rank,
                   dst_off + i * static_cast<std::uint64_t>(dst_stride) *
                                 elem_bytes,
                   s + static_cast<std::ptrdiff_t>(i) * src_stride *
                           static_cast<std::ptrdiff_t>(elem_bytes),
                   elem_bytes);
  }
}

void GasnetConduit::do_iget(void* dst, std::ptrdiff_t dst_stride, int rank,
                         std::uint64_t src_off, std::ptrdiff_t src_stride,
                         std::size_t elem_bytes, std::size_t nelems) {
  auto* d = static_cast<std::byte*>(dst);
  for (std::size_t i = 0; i < nelems; ++i) {
    world_.get(d + static_cast<std::ptrdiff_t>(i) * dst_stride *
                       static_cast<std::ptrdiff_t>(elem_bytes),
               rank,
               src_off + i * static_cast<std::uint64_t>(src_stride) *
                             elem_bytes,
               elem_bytes);
  }
}

void GasnetConduit::wait_until(std::uint64_t off, Cmp cmp,
                               std::int64_t value) {
  world_.block_until(off, [cmp, value](std::int64_t v) {
    switch (cmp) {
      case Cmp::kEq: return v == value;
      case Cmp::kNe: return v != value;
      case Cmp::kGt: return v > value;
      case Cmp::kGe: return v >= value;
      case Cmp::kLt: return v < value;
      case Cmp::kLe: return v <= value;
    }
    return false;
  });
}

}  // namespace caf
