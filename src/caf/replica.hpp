// caf::repl — shard replication over one-sided RMA (the DHT's data plane
// made redundant; DESIGN.md §4d).
//
// Two pieces:
//
//   * ReplicaMap: an epoch-versioned ownership map. Each shard gets a
//     primary plus R-1 replicas chosen by a deterministic greedy walk from
//     the shard's home image, preferring distinct *nodes* so a node kill
//     cannot take every copy. The map is a pure function of the engine's
//     ordered declared-failure list, so every surviving image computes the
//     identical owner set at every membership epoch with no coordinator:
//     when a primary is declared failed, erasing it promotes the next
//     surviving replica (list order is preserved across replays) and a
//     live non-owner is appended as the re-replication target.
//
//   * ShardStore: the replicated data plane on top of a caf::Runtime.
//     Writes lock the shard's stripe lock *at the primary*, advance the
//     shard's sequence number there (AMO), read-modify locally, then chain
//     the new slot bytes to every owner over the nonblocking-RMA path —
//     one sync_memory_stat() fence retires the whole chain before the
//     unlock, so a write is acknowledged only once every surviving owner
//     has the bytes. Reads prefer the primary but fall back to a synced
//     replica while the primary is suspect or declared. A background
//     anti-entropy pass pulls whole shards (under the same stripe lock)
//     into owners whose local copy is unsynced, restoring the replication
//     factor after a failover.
//
// Consistency contract (see DESIGN.md §4d for the full argument):
//   * acknowledged writes survive any failure the ownership map can absorb
//     (fewer than R owner deaths per shard between anti-entropy passes);
//   * updates are at-least-once across a primary failover — a retried
//     update whose first attempt partially landed can re-apply, so
//     monotone merge functions (counters, max-registers) are exact lower
//     bounds and arbitrary blind writes are last-writer-wins;
//   * reads are dirty (no read lock) and may trail an in-flight chain by
//     one update.
//
// Everything emits repl.* counters (keyed by the calling image's 0-based
// rank) and kReplPull spans through src/obs.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "caf/runtime.hpp"

namespace caf::repl {

struct Options {
  /// Copies per shard (primary + replication-1 replicas). 1 = no
  /// redundancy (degenerates to the plain DHT placement).
  int replication = 2;
  std::int64_t num_shards = 0;      ///< required: > 0
  std::int64_t slots_per_shard = 0; ///< required: > 0
  std::size_t slot_bytes = 16;     ///< bytes per slot (one table entry)
  /// Stripe locks (shard % num_locks), each taken at the shard's primary.
  int num_locks = 16;
};

class ReplicaMap {
 public:
  ReplicaMap(int nimages, int cores_per_node, int replication,
             std::int64_t num_shards);

  /// The deterministic core, unit-testable without a runtime: the owner
  /// list (0-based PEs, owners[0] = primary) for `shard` after applying
  /// `declared` — the engine's declared-failure PE list *in declaration
  /// order*. Initial selection walks the ring from home = shard % nimages
  /// picking live images, first preferring nodes not yet represented; each
  /// declared owner is then erased (preserving order, so the next
  /// surviving replica is promoted) and a live non-owner appended by the
  /// same preference walk.
  static std::vector<int> compute_owners(std::int64_t shard, int nimages,
                                         int cores_per_node, int replication,
                                         const std::vector<int>& declared);

  /// Cached owner list for `shard` at the engine's current membership
  /// epoch. Replays any declarations that landed since the last call (all
  /// shards at once, so one epoch bump costs one sweep).
  const std::vector<int>& owners(std::int64_t shard, sim::Engine& eng);

  /// 1-based primary image for `shard` (0 when every candidate is dead).
  int primary_image(std::int64_t shard, sim::Engine& eng) {
    const auto& ow = owners(shard, eng);
    return ow.empty() ? 0 : ow[0] + 1;
  }

  /// Primary changes observed by this map instance across replays.
  std::uint64_t promotions() const { return promotions_; }

 private:
  void fill(std::vector<int>& owners, std::int64_t shard,
            const std::vector<char>& dead) const;
  static void fill_impl(std::vector<int>& owners, std::int64_t shard, int n,
                        int cpn, int r, const std::vector<char>& dead);

  int n_;
  int cpn_;
  int r_;
  std::vector<std::vector<int>> owners_;  ///< per shard, replayed view
  std::vector<char> dead_;                ///< replayed declared set
  std::size_t consumed_declared_ = 0;     ///< engine declarations applied
  std::uint64_t promotions_ = 0;
};

class ShardStore {
 public:
  /// Collective: every image constructs its own ShardStore (same Options)
  /// after rt.init(), exactly like the DHT table builders. Allocates the
  /// symmetric shard data, per-shard sequence and synced cells, and the
  /// stripe locks, and ends with a sync_all.
  ShardStore(Runtime& rt, Options opts);

  const Options& options() const { return o_; }
  ReplicaMap& map() { return map_; }
  std::size_t shard_bytes() const {
    return static_cast<std::size_t>(o_.slots_per_shard) * o_.slot_bytes;
  }

  /// Replicated read-modify-write of one slot: lock at the primary,
  /// sequence + read there, apply `modify` to the slot bytes, chain the
  /// result to every owner, fence, unlock. Returns true when the write is
  /// *acknowledged* — every owner surviving at fence time has the bytes.
  /// Retries through primary failovers (at-least-once; see header).
  bool update(std::int64_t shard, std::int64_t slot,
              const std::function<void(void*)>& modify);

  /// Reads one slot into `out`. Primary read unless the primary is
  /// declared failed or currently suspect — then the first live *synced*
  /// replica serves (repl.read_fallbacks). Returns false only when no
  /// owner is reachable.
  bool read(void* out, std::int64_t shard, std::int64_t slot);

  /// One anti-entropy pass: for up to `max_pulls` shards this image owns
  /// whose local copy is unsynced, pull the whole shard from a synced
  /// owner under the stripe lock and mark it synced. Returns the number
  /// of shards pulled. Call repeatedly (it is incremental and idempotent)
  /// until under_replicated_local() reaches 0.
  int anti_entropy(int max_pulls = 1 << 30);

  /// Shards this image owns at the current epoch whose local copy is not
  /// synced — the image's own re-replication debt.
  int under_replicated_local();

  // ---- introspection (tests) ----
  std::uint64_t data_off() const { return data_off_; }
  std::int64_t local_seq(std::int64_t shard);
  std::int64_t local_synced(std::int64_t shard);

 private:
  bool chain_and_fence(const std::vector<int>& owners, int primary_image,
                       std::uint64_t entry_off, std::uint64_t seq_cell,
                       const void* slot_bytes_buf, std::int64_t seq);
  bool pull_shard(std::int64_t shard, int lock_image, int src_image);

  Runtime& rt_;
  Options o_;
  ReplicaMap map_;
  std::uint64_t data_off_ = 0;    ///< num_shards * shard_bytes
  std::uint64_t seq_off_ = 0;     ///< num_shards int64 sequence cells
  std::uint64_t synced_off_ = 0;  ///< num_shards int64 synced flags
  std::vector<CoLock> locks_;
  std::vector<std::byte> scratch_;

  // repl.* registry handles (this image's rank; process-stable).
  std::uint64_t* c_writes_;
  std::uint64_t* c_writes_acked_;
  std::uint64_t* c_write_retries_;
  std::uint64_t* c_write_failures_;
  std::uint64_t* c_chain_puts_;
  std::uint64_t* c_chain_refences_;
  std::uint64_t* c_lock_reclaims_;
  std::uint64_t* c_reads_;
  std::uint64_t* c_read_primary_;
  std::uint64_t* c_read_fallbacks_;
  std::uint64_t* c_read_stale_skips_;
  std::uint64_t* c_read_failures_;
  std::uint64_t* c_ae_pulls_;
  std::uint64_t* c_ae_bytes_;
  std::uint64_t* c_promotions_;
};

}  // namespace caf::repl
