// caf::Runtime — the UHCAF-style Coarray Fortran runtime retargeted onto an
// abstract communication conduit (the paper's contribution, §IV).
//
// A single Runtime instance is shared by all image fibers (exactly like the
// real runtime's per-process state). Every image must call init() first —
// it collectively allocates the runtime's internal symmetric structures:
//
//   * the managed buffer ("slab") for non-symmetric remotely-accessible
//     data, out of which MCS-lock qnodes are carved (§IV-A, §IV-D);
//   * sync_images counters (one int64 per partner image);
//   * staging slots + flags for the one-sided broadcast/reduction
//     implementation (paper footnote 1);
//   * the qnode hash table for currently-held locks.
//
// Image indices in the public API are 1-based, as in Fortran.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "caf/collectives.hpp"
#include "caf/conduit.hpp"
#include "caf/node_heap.hpp"
#include "caf/remote_ptr.hpp"
#include "caf/section.hpp"
#include "net/fault.hpp"
#include "net/node_channel.hpp"
#include "shmem/heap.hpp"

namespace caf {

/// Multi-dimensional strided transfer algorithm (§IV-C).
enum class StridedAlgo {
  kNaive,    ///< one contiguous put/get per element run
  kTwoDim,   ///< 2dim_strided: 1-D iput/iget along the best of dims 1-2
  kAdaptive, ///< §VII future work: cost model picks between contiguous-run
             ///< transfers and 1-D strided calls per section (accounts for
             ///< per-call overhead, per-element NIC gap, and run lengths)
  kAggregate,///< puts only: stage the runs through the write-combining
             ///< buffer so many small runs ship as few scatter messages
             ///< (requires Options::rma.write_combining; planner-eligible)
};

/// Completion-semantics policy for co-indexed RMA (§IV-B).
enum class MemoryModel {
  kStrict,   ///< insert quiet after puts / before gets (the paper's choice)
  kRelaxed,  ///< OpenSHMEM-native ordering; user must sync memory explicitly
};

/// When co-indexed puts complete (the nonblocking RMA pipeline).
enum class CompletionMode {
  kEager,    ///< quiet after every put — the paper's §IV-B translation
  kDeferred, ///< nbi issue; flush only at completion points (sync/atomic/
             ///< lock boundaries). Strict-mode *observable* semantics are
             ///< preserved: same-target ordering comes from the transport's
             ///< in-order delivery, and gets flush pending puts first.
};

/// Tuning for the nonblocking RMA pipeline (tentpole of this PR).
struct RmaOptions {
  CompletionMode completion = CompletionMode::kEager;
  /// Coalesce small puts to the same image into a staging chunk carved from
  /// the managed slab, shipped as one scatter message (needs kDeferred).
  bool write_combining = false;
  std::size_t agg_chunk_bytes = 4096;  ///< staging watermark per image
  std::size_t agg_max_put = 512;       ///< larger puts bypass the stage
  /// Merge adjacent innermost runs in strided transfers into one message.
  bool run_coalescing = true;
};

/// CPU cost (ns) of appending one put to the write-combining stage (a bounds
/// check, a descriptor store, and a short memcpy). Shared with the §VII
/// planner so the aggregated plan prices its staging honestly.
inline constexpr sim::Time kAggStageCpuNs = 15;

class RpcEngine;

/// Asynchronous remote-execution (RPC) subsystem tuning (DESIGN.md §4f).
/// `enabled` must be uniform across images (the engine's symmetric state is
/// allocated collectively inside init()). Existing runs keep byte-identical
/// timing with the default (off): no symmetric allocations, no progress
/// hooks, no extra state.
struct RpcOptions {
  bool enabled = false;
  /// Request transport. kMailbox emulates the OpenSHMEM signaling idiom:
  /// symmetric per-pair slot rings + a put/quiet/amo doorbell, drained by
  /// shmem_test-style polling at the runtime's progress points (no hidden
  /// progress thread). kAm rides the conduit's active-message machinery
  /// (GASNet only; handlers get implicit progress on the target CPU).
  /// kAuto picks kAm on the GASNet conduit and kMailbox elsewhere.
  enum class Transport { kAuto, kMailbox, kAm };
  Transport transport = Transport::kAuto;
  int slots_per_pair = 16;       ///< mailbox ring depth per (src, dst) pair
  std::size_t slot_bytes = 256;  ///< per-slot bytes (32-byte header + blob)
};

struct Options {
  StridedAlgo strided = StridedAlgo::kTwoDim;
  MemoryModel memory_model = MemoryModel::kStrict;
  /// Dispatch co_broadcast/co_* to the conduit's Table II native mappings
  /// (shmem_broadcast / <op>_to_all) instead of the topology-aware engine.
  /// Off by default: the engine's node-leader trees beat the flat native
  /// models at scale on every conduit (see bench/ablate_coll and the fig10
  /// Himeno series); the native path stays available for comparison and is
  /// still what resilient-mode collectives fall back to.
  bool use_native_collectives = false;
  std::size_t nonsym_slab_bytes = 256 * 1024;
  RmaOptions rma;
  CollOptions coll;  ///< hierarchical collectives engine tuning
  /// Failure-detector and retransmit tunables for this run. When set, the
  /// harness copies them into the run's FaultPlan before arming the
  /// injector (the runtime itself never talks to the injector directly —
  /// it only consumes the engine's declared membership view). The CAF_FD_*
  /// environment family (see DetectorTunables::apply_env and
  /// RetryPolicy::apply_env) overrides these when present.
  std::optional<net::DetectorTunables> fd;
  /// Node-local shared-segment transport (net::NodeChannel): when enabled,
  /// same-node RMA completes via direct memory operations on a per-node
  /// shared symmetric heap — SPSC rings for small messages, NUMA-aware
  /// memcpy for bulk — with zero fabric messages. The Runtime constructor
  /// enables it on the conduit's fabric::Domain (conduits without a Domain
  /// ignore it). Off by default: existing runs stay byte-identical.
  net::NodeTransportOptions node;
  /// Asynchronous remote execution (caf::rpc / caf::rpc_ff; DESIGN.md §4f).
  RpcOptions rpc;
  /// Turn on the observability subsystem (per-PE event rings + latency
  /// histograms) for this run; equivalent to setting CAF_TRACE, minus the
  /// trace-file path. Counters are recorded regardless.
  bool trace = false;
};

/// Statistics returned by the strided engine (used by tests/benches to
/// verify message-count claims like "1*40*25 instead of 50*40*25").
struct StridedStats {
  std::size_t messages = 0;
  std::size_t elements = 0;
  std::size_t coalesced = 0;  ///< adjacent runs merged into a neighbor
};

/// Fortran stat= codes for image-control statements (the subset the
/// runtime can raise; the values mirror ISO_FORTRAN_ENV's spirit).
enum StatCode : int {
  kStatOk = 0,
  kStatLocked = 1,          ///< lock: executing image already holds it
  kStatUnlocked = 2,        ///< unlock: executing image does not hold it
  kStatLockedOtherImage = 3,///< (reserved; not raised by this runtime)
  kStatFailedImage = 4,     ///< Fortran 2018 STAT_FAILED_IMAGE: a peer died
  kStatOutOfMemory = 5      ///< allocate: symmetric heap exhausted
};

/// Per-image communication counters (a runtime tracing facility; handy for
/// verifying the §IV-C message-count claims on live programs).
struct ImageStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t strided_puts = 0;   // 1-D iput calls issued
  std::uint64_t strided_gets = 0;
  std::uint64_t amos = 0;
  std::uint64_t put_bytes = 0;
  std::uint64_t get_bytes = 0;
  std::uint64_t locks_acquired = 0;
  std::uint64_t syncs = 0;          // sync all + sync images statements
  // --- nonblocking-pipeline observability ---
  std::uint64_t agg_staged = 0;     // puts absorbed by the staging chunk
  std::uint64_t agg_flushes = 0;    // scatter messages the chunk emitted
  std::uint64_t coalesced_runs = 0; // strided runs merged into a neighbor
  std::uint64_t fences = 0;         // completion points reached
};

/// Handle to a coarray lock variable (a symmetric 8-byte tail per image).
struct CoLock {
  std::uint64_t tail_off = 0;
};

/// Handle to a CAF event variable (an extension feature; counter-based).
struct CoEvent {
  std::uint64_t count_off = 0;
};

/// A survivor team (minimal Fortran 2018 FORM TEAM facility): the sorted
/// 1-based indices of the images that were alive when form_team() ran.
/// Team-scoped synchronization and collectives take a Team and skip (and
/// report) members that have since failed. One team is active at a time;
/// reform after each failure.
struct Team {
  std::vector<int> members;  // sorted, 1-based
  int num_images() const { return static_cast<int>(members.size()); }
  bool contains(int image) const {
    return std::find(members.begin(), members.end(), image) != members.end();
  }
  /// 1-based team rank of `image` (Fortran this_image(team)); 0 if absent.
  int rank_of(int image) const {
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i] == image) return static_cast<int>(i) + 1;
    }
    return 0;
  }
};

class Runtime {
 public:
  Runtime(Conduit& conduit, Options opts = {});
  ~Runtime();  // out of line: RpcEngine is incomplete here

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Collective; must be each image's first runtime call.
  void init();

  // ---- image inquiry (Table II: this_image/num_images → my_pe/num_pes) --
  int this_image() const { return conduit_.rank() + 1; }
  int num_images() const { return conduit_.nranks(); }

  Conduit& conduit() { return conduit_; }
  /// CAF-layer view of the per-node shared symmetric heap (direct-pointer
  /// resolution, NUMA topology queries). Cheap to construct; valid whether
  /// or not the node transport is enabled — check NodeHeap::enabled().
  NodeHeap node_heap() { return NodeHeap(conduit_); }
  const Options& options() const { return opts_; }
  void set_strided_algo(StridedAlgo a) { opts_.strided = a; }
  /// The topology-aware collectives engine (valid after init(); null before).
  CollectiveEngine* coll_engine() { return coll_engine_.get(); }

  // ---- image control & synchronization ----
  void sync_all();                                  // sync all
  void sync_images(std::span<const int> images);    // sync images(list)
  void sync_memory() { rma_fence(); }               // sync memory
  /// `sync memory (stat=s)`: completion point that survives peer failure.
  /// Returns kStatFailedImage instead of throwing when an outstanding
  /// (staged or in-flight) put's target died — puts to *live* targets are
  /// still completed before it returns, so a replication chain can fence
  /// once, inspect the stat, and know every surviving replica has the data.
  int sync_memory_stat();

  // ---- failed-image semantics (Fortran 2018) ----
  /// IMAGE_STATUS(image): kStatFailedImage if the image has failed, else
  /// kStatOk. Image index is 1-based.
  int image_status(int image);
  /// FAILED_IMAGES(): sorted 1-based indices of all failed images.
  std::vector<int> failed_images();
  /// `sync all (stat=s)`: a barrier that survives image failure. Returns
  /// kStatOk when every image participated, kStatFailedImage once any
  /// image has failed (survivors still synchronize with each other and
  /// never hang waiting on the dead image).
  int sync_all_stat();
  /// `sync images(list, stat=s)`: pairwise sync that survives partner
  /// failure. Returns kStatFailedImage when any listed partner has failed
  /// (still synchronizing with the live ones); kStatOk otherwise.
  int sync_images_stat(std::span<const int> images);
  /// True while the in-band failure detector holds `image` in the suspect
  /// state (missed heartbeats, not yet declared). Advisory only — suspicion
  /// never changes membership; the replica layer uses it to steer reads
  /// away from a probably-dead primary before the declaration commits.
  /// Always false without an armed detector.
  bool image_suspect(int image) {
    return conduit_.engine().pe_suspected(image - 1);
  }
  /// The engine's monotone membership epoch (bumped per declared failure).
  /// Epoch-keyed layers (collective trees, replica ownership maps) cache
  /// derived state against this value.
  std::uint64_t membership_epoch() {
    return conduit_.engine().membership_epoch();
  }

  // ---- survivor teams (minimal FORM TEAM, Fortran 2018) ----
  /// Collective over the *live* images: barriers with every live peer and
  /// returns the surviving membership. Optional *stat receives
  /// kStatFailedImage when any image has failed (the team excludes them).
  Team form_team(int* stat = nullptr);
  /// Team-scoped barrier (`sync team`): synchronizes the live members and
  /// returns kStatFailedImage when any member has failed since formation.
  int team_sync(const Team& team);
  /// Team-scoped broadcast from `root_image` (a 1-based *global* index that
  /// must be a team member). Returns a StatCode.
  int team_broadcast_bytes(const Team& team, void* data, std::size_t nbytes,
                           int root_image);
  /// Team-scoped co_sum over the live members. Returns a StatCode.
  template <typename T>
  int co_sum_team(const Team& team, T* data, std::size_t nelems);

  // ---- symmetric (coarray) allocation; collective ----
  std::uint64_t allocate_coarray_bytes(std::size_t bytes);
  void deallocate_coarray_bytes(std::uint64_t off);
  /// `allocate(..., stat=s)`: never throws. Sets *stat to kStatOk and
  /// returns the offset on success; kStatOutOfMemory (heap exhausted) or
  /// kStatFailedImage (a peer died — the collective can no longer complete)
  /// with a 0 return otherwise.
  std::uint64_t allocate_coarray_bytes(std::size_t bytes, int* stat);

  /// Host address of a symmetric offset on a given 1-based image. Only the
  /// caller's own image may be written through this pointer; other images'
  /// addresses are for the runtime's delivery machinery and tests.
  std::byte* local_addr(std::uint64_t off) {
    return conduit_.segment(conduit_.rank()) + off;
  }
  std::byte* image_addr(int image, std::uint64_t off) {
    return conduit_.segment(image - 1) + off;
  }

  // ---- non-symmetric managed buffer (§IV-A) ----
  /// Allocates remotely-accessible memory local to this image; other images
  /// can reach it through the returned packed RemotePtr.
  RemotePtr nonsym_alloc(std::size_t bytes);
  void nonsym_free(RemotePtr p);

  // ---- co-indexed RMA with CAF completion semantics (§IV-B) ----
  void put_bytes(int image, std::uint64_t dst_off, const void* src,
                 std::size_t n);
  void get_bytes(void* dst, int image, std::uint64_t src_off, std::size_t n);
  /// stat= variants: return kStatFailedImage instead of throwing when the
  /// target image has failed (before or during the transfer).
  int put_bytes_stat(int image, std::uint64_t dst_off, const void* src,
                     std::size_t n);
  int get_bytes_stat(void* dst, int image, std::uint64_t src_off,
                     std::size_t n);

  // ---- multi-dimensional strided RMA (§IV-C) ----
  /// Puts `src_packed` (elements in section order, column-major) into the
  /// described section of a remote coarray whose storage starts at
  /// `base_off`. Honors opts_.strided unless `algo_override` is given.
  StridedStats put_strided(int image, std::uint64_t base_off,
                           std::size_t elem_bytes, const SectionDesc& dst,
                           const void* src_packed);
  StridedStats get_strided(void* dst_packed, int image, std::uint64_t base_off,
                           std::size_t elem_bytes, const SectionDesc& src);

  // ---- coarray locks: MCS adaptation (§IV-D) ----
  CoLock make_lock();             // collective
  void free_lock(CoLock);         // collective
  void lock(CoLock lck, int image);
  void unlock(CoLock lck, int image);
  /// Non-blocking acquire attempt (lock statement with acquired_lock=).
  bool try_lock(CoLock lck, int image);
  /// Fortran stat= variants: never throw; return a StatCode instead
  /// (lock(lck[j], stat=s) / unlock(lck[j], stat=s)).
  ///
  /// Failure-recovery semantics (F2018 11.6.10, active when kills are
  /// armed): if the lock variable's *owner image* has failed, lock_stat
  /// returns kStatFailedImage without acquiring. If the lock was held by an
  /// image that failed, the queue is repaired, the acquiring survivor gets
  /// the lock, and that acquisition — exactly one per reclamation — reports
  /// kStatFailedImage while still holding the lock (check holds_lock()).
  int lock_stat(CoLock lck, int image);
  int unlock_stat(CoLock lck, int image);
  /// True when this image currently holds lck[image].
  bool holds_lock(CoLock lck, int image) const;
  /// Number of qnodes currently held by this image (tests: "M+1" bound).
  std::size_t held_qnodes() const;

  // ---- critical construct ----
  void begin_critical();
  void end_critical();

  // ---- events (OpenUH extension features, §II-A) ----
  CoEvent make_event();           // collective
  void event_post(CoEvent ev, int image);
  void event_wait(CoEvent ev, std::int64_t until_count = 1);
  std::int64_t event_query(CoEvent ev);
  /// stat= variants: event_post_stat returns kStatFailedImage instead of
  /// throwing when the target image died; event_wait_stat gives up with
  /// kStatFailedImage once an image failure makes the count unreachable
  /// (the count is only consumed on a satisfied wait, so event_query never
  /// underflows when a poster died mid-post).
  int event_post_stat(CoEvent ev, int image);
  int event_wait_stat(CoEvent ev, std::int64_t until_count = 1);

  // ---- nonblocking synchronization probes (shmem_test-shaped) ----
  /// EVENT WAIT's nonblocking twin: true when `until_count` posts are
  /// available (and consumes them, exactly like a satisfied event_wait);
  /// false immediately otherwise. Never blocks, never yields the fiber, and
  /// performs no communication — it is a single local read of the event
  /// cell, the shape of shmem_test on the event's signal word. A pending
  /// failure sentinel on the cell is ignored (not consumed), matching
  /// event_query.
  bool event_test(CoEvent ev, std::int64_t until_count = 1);
  /// SYNC IMAGES' nonblocking twin for one partner. The first probe of each
  /// round notifies the partner (fence + counter bump — a bounded, already-
  /// satisfiable-or-not round trip, never an unbounded wait) and returns
  /// whether the partner's matching notification has already arrived;
  /// subsequent probes are pure local reads of the sync counter until one
  /// succeeds, which completes the round (interoperating with a partner
  /// executing plain `sync images`). Never blocks or yields.
  bool sync_test(int image);

  // ---- asynchronous remote execution (caf::rpc / caf::rpc_ff, §4f) ----
  /// The RPC engine, or nullptr when Options::rpc.enabled is false.
  RpcEngine* rpc_engine() { return rpc_engine_.get(); }
  /// Explicit progress point: drains this image's request mailbox and runs
  /// any ready future continuations. No-op when RPC is off. The runtime
  /// calls this from its own progress points (fences, collectives, waits);
  /// user code may call it inside long compute loops.
  void rpc_progress();

  // ---- atomics on symmetric int64 cells (atomic_* intrinsics) ----
  // Atomics are completion points of the deferred pipeline in strict mode:
  // an atomic often publishes data written by preceding puts, so those puts
  // (staged or in flight) complete first. Free in eager mode — the
  // aggregation chunk is empty and the quiet is tracker-elided.
  std::int64_t atomic_fetch_add(int image, std::uint64_t off, std::int64_t v) {
    atomic_boundary();
    return conduit_.amo_fadd(image - 1, off, v);
  }
  std::int64_t atomic_cas(int image, std::uint64_t off, std::int64_t cond,
                          std::int64_t val) {
    atomic_boundary();
    return conduit_.amo_cswap(image - 1, off, cond, val);
  }
  std::int64_t atomic_swap(int image, std::uint64_t off, std::int64_t v) {
    atomic_boundary();
    return conduit_.amo_swap(image - 1, off, v);
  }
  std::int64_t atomic_fetch_and(int image, std::uint64_t off, std::int64_t m) {
    atomic_boundary();
    return conduit_.amo_fand(image - 1, off, m);
  }
  std::int64_t atomic_fetch_or(int image, std::uint64_t off, std::int64_t m) {
    atomic_boundary();
    return conduit_.amo_for(image - 1, off, m);
  }
  std::int64_t atomic_fetch_xor(int image, std::uint64_t off, std::int64_t m) {
    atomic_boundary();
    return conduit_.amo_fxor(image - 1, off, m);
  }
  void atomic_define(int image, std::uint64_t off, std::int64_t v) {
    atomic_boundary();
    (void)conduit_.amo_swap(image - 1, off, v);
  }
  std::int64_t atomic_ref(int image, std::uint64_t off) {
    atomic_boundary();
    return conduit_.amo_fadd(image - 1, off, 0);
  }

  // ---- collectives (co_broadcast / co_sum / co_min / co_max) ----
  template <typename T>
  void co_broadcast(T* data, std::size_t nelems, int source_image);
  template <typename T>
  void co_sum(T* data, std::size_t nelems) {
    co_reduce_impl(data, nelems, ReduceOp::kSum);
  }
  template <typename T>
  void co_min(T* data, std::size_t nelems) {
    co_reduce_impl(data, nelems, ReduceOp::kMin);
  }
  template <typename T>
  void co_max(T* data, std::size_t nelems) {
    co_reduce_impl(data, nelems, ReduceOp::kMax);
  }

  // ---- tracing ----
  /// Snapshot of this image's communication counters since init/reset.
  const ImageStats& stats() const { return per_image_[me()].stats; }
  void reset_stats() { per_image_[me()].stats = ImageStats{}; }

 private:
  friend struct RuntimeTestPeer;
  friend class RpcEngine;  // mailbox transport uses wait_fault/read_local_i64

  struct LockKey {
    std::uint64_t tail_off;
    int image;  // 1-based
    bool operator==(const LockKey&) const = default;
  };
  struct LockKeyHash {
    std::size_t operator()(const LockKey& k) const {
      return std::hash<std::uint64_t>()(k.tail_off * 1'000'003u +
                                        static_cast<std::uint64_t>(k.image));
    }
  };

  void require_init() const;
  int me() const { return conduit_.rank(); }

  // ---- nonblocking RMA pipeline (write combining + deferred quiet) ----
  bool deferred() const {
    return opts_.rma.completion == CompletionMode::kDeferred;
  }
  /// Completion point: flush the write-combining chunk, then complete every
  /// outstanding nbi put. Cheap no-op when nothing is in flight.
  void rma_fence();
  /// Strict-mode atomics are completion points (see the atomic_* wrappers).
  void atomic_boundary() {
    if (opts_.memory_model == MemoryModel::kStrict) rma_fence();
  }
  /// Ship the staged records as one scatter message; no-op when empty.
  void agg_flush();
  /// Try to absorb a put into the staging chunk. False when staging is off,
  /// the put is too large, or the target image has no room (after an
  /// implicit watermark/target-switch flush).
  bool stage_put(int rank0, std::uint64_t dst_off, const void* src,
                 std::size_t n);
  /// Deferred-path put: staged when small, direct nbi otherwise (flushing
  /// the chunk first when it targets the same image, for program order).
  void pipelined_put(int rank0, std::uint64_t dst_off, const void* src,
                     std::size_t n);

  /// Engine failure hook (scheduler context): pokes kFailedSentinel into
  /// every survivor's sync-all counter slot for the dead image so blocked
  /// `sync all (stat=)` waiters wake up instead of hanging. In resilient
  /// mode it additionally sentinel-bumps the dead image's sync_images slot
  /// and every cell a survivor registered through wait_fault(), so robust
  /// lock/event/team waits observe the failure instead of sleeping forever.
  void handle_image_failure(int failed_pe, sim::Time at);

  // ---- failure-recovery machinery (active only when kills are armed) ----
  std::int64_t read_local_i64(std::uint64_t off);
  void write_local_i64(std::uint64_t off, std::int64_t v);
  /// Blocks on a local cell like Conduit::wait_until, but registers the
  /// cell so the failure hook can wake it with an additive sentinel bump.
  /// Returns true on a failure wake-up (the cell is restored to its true
  /// value first), false when the condition is genuinely satisfied. The
  /// cmp/value pair must be satisfiable by a sentinel-bumped cell (kNe or
  /// kGe forms).
  bool wait_fault(std::uint64_t off, Cmp cmp, std::int64_t value);

  // Robust MCS lock internals (epoch-stamped qnodes + home-side queue
  // records + CAS queue repair). See runtime.cpp for the protocol.
  std::size_t lock_cell_bytes() const;
  int mcs_lock(CoLock lck, int image, bool* reclaimed);
  int mcs_unlock(CoLock lck, int image);
  bool mcs_try_lock(CoLock lck, int image);
  int repair_mutex_acquire(int home, CoLock lck);
  void repair_mutex_release(int home, CoLock lck);
  struct RebuildResult {
    bool queue_empty = false;
    bool granted = false;  // some live member was granted the lock
  };
  RebuildResult mcs_rebuild(CoLock lck, int image);
  void quarantine_qnode(RemotePtr qn);
  void drain_quarantine();
  std::uint8_t next_epoch();

  int team_coll_bytes(const Team& team, void* data, std::size_t nbytes,
                      const std::function<void(void*, const void*)>& comb,
                      int root_image);

  // ---- membership-epoch tree distribution for team collectives ----
  /// The tree plan for the team's live members under the current membership
  /// epoch (rebuilt by the collectives engine whenever the epoch moves).
  const TreePlan& team_tree_plan(const Team& team, int root0);
  /// Local snapshot of all per-sender tree mark cells. Taken *before* the
  /// team_sync that precedes a distribution phase: any strictly newer mark
  /// then provably belongs to the current collective (a sender flushes its
  /// pushes inside the previous collective's closing sync, and cannot push
  /// for this one until the receiver's own sync bump — which happens after
  /// this snapshot — lets it through the barrier).
  void tree_mark_snapshot(std::vector<std::int64_t>& out);
  /// Bounded-poll receive along my tree edge. True when the parent's push
  /// for this collective landed (payload copied into `data`); false after
  /// the poll budget, a stale plan, or a declared parent — the caller then
  /// falls back to the always-correct pull from the root's staging slot.
  bool team_tree_receive(const TreePlan& plan, void* data, std::size_t nbytes,
                         const std::vector<std::int64_t>& base);
  /// Push payload + mark to my live tree children (nbi; the closing
  /// team_sync's quiet retires the puts).
  void team_tree_forward(const TreePlan& plan, const void* data,
                         std::size_t nbytes);

  // Generic one-sided collective machinery (staged through internal slots).
  void coll_broadcast_bytes(void* data, std::size_t nbytes, int root0);
  void coll_reduce_bytes(void* data, std::size_t nelems, std::size_t elem,
                         const std::function<void(void*, const void*)>& comb);
  /// Whole-payload broadcast/allreduce dispatch: the conduit's native
  /// collective (Table II) when enabled, else the hierarchical engine, else
  /// the legacy chunked binomial path.
  void broadcast_bytes_any(void* data, std::size_t nbytes, int root0);
  void allreduce_bytes_any(void* data, std::size_t nelems, std::size_t elem,
                           const std::function<void(void*, const void*)>& comb);
  template <typename T>
  void co_reduce_impl(T* data, std::size_t nelems, ReduceOp op);

  Conduit& conduit_;
  Options opts_;
  bool inited_ = false;
  std::unique_ptr<CollectiveEngine> coll_engine_;
  std::unique_ptr<RpcEngine> rpc_engine_;

  // Internal symmetric offsets (identical across images).
  std::uint64_t slab_off_ = 0;       // non-symmetric managed buffer
  std::uint64_t sync_ctrs_off_ = 0;  // num_images int64 counters
  std::uint64_t coll_flags_off_ = 0; // kMaxRounds + 1 int64 flags
  std::uint64_t coll_slot_off_ = 0;  // kSlotBytes staging area
  std::uint64_t critical_off_ = 0;   // global critical-section lock tail
  std::uint64_t syncall_ctrs_off_ = 0;  // num_images int64 sync-all counters
  bool sync_offsets_ready_ = false;     // init() finished allocating above
  bool failure_hook_registered_ = false;
  /// Kills are armed for this run (Engine::kills_armed at init time): the
  /// failure-recovery protocols are enabled and the lock cells carry the
  /// extended robust layout. Off by default so fault-free runs keep the
  /// original RMA sequences bit-for-bit.
  bool resilient_ = false;

  // Team facility offsets (allocated by init() only in resilient mode).
  std::uint64_t team_ctrs_off_ = 0;      // num_images pairwise sync counters
  std::uint64_t team_flag_off_ = 0;      // collective result-ready flag
  std::uint64_t team_coll_ctr_off_ = 0;  // root-side contribution counter
  std::uint64_t team_slots_off_ = 0;     // num_images * kTeamChunk gather area
  // Tree-distribution staging: one payload slot and one mark cell per
  // *sender*, so concurrent pushes from different tree levels never collide
  // and a mark is only ever written by its one sender (monotonic counts).
  std::uint64_t tree_slots_off_ = 0;     // num_images * kTeamChunk
  std::uint64_t tree_marks_off_ = 0;     // num_images int64 mark cells

  static constexpr int kMaxRounds = 16;
  static constexpr std::size_t kSlotBytes = 8192;
  static constexpr std::size_t kTeamChunk = 1024;
  /// Poked into a survivor's sync-all slot for a dead image: large enough
  /// to satisfy any round's `>= round` wait, and an in-flight fadd merely
  /// bumps it (staying >= every future round) rather than erasing it.
  static constexpr std::int64_t kFailedSentinel = std::int64_t{1} << 62;
  /// A cell at or above this holds an additive failure sentinel (true value
  /// + kFailedSentinel; the true values near a sentinel-bumped cell are the
  /// small lock-grant codes, hence the -4 slack).
  static constexpr std::int64_t kSentinelThreshold = kFailedSentinel - 4;

  // Per-image runtime state, indexed by 0-based rank. Each fiber only
  // touches its own entry.
  struct PerImage {
    std::unique_ptr<shmem::FreeListAllocator> slab;
    std::unordered_map<LockKey, RemotePtr, LockKeyHash> held;
    std::unordered_map<int, std::int64_t> sync_sent;  // partner rank -> count
    /// Partners this image has already notified for the current sync_test
    /// round (the first probe sends; later probes only poll).
    std::unordered_map<int, bool> sync_probe_pending;
    std::unordered_map<std::uint64_t, std::int64_t> event_consumed;
    std::int64_t coll_gen = 0;
    std::int64_t syncall_round = 0;  // rounds of sync_all_stat completed
    ImageStats stats;
    // --- resilient-mode state ---
    std::unordered_map<int, std::int64_t> team_sent;  // pairwise team syncs
    /// Cumulative tree pushes per child rank (the mark values; strictly
    /// monotonic per edge, so a receiver's pre-sync snapshot always reads
    /// below the current collective's mark).
    std::unordered_map<int, std::int64_t> tree_sent;
    /// Scratch for tree_mark_snapshot (avoids per-collective allocation).
    std::vector<std::int64_t> tree_base;
    std::uint8_t qnode_epoch = 0;  // per-acquisition epoch stamp (wraps)
    /// Local cells currently blocked on through wait_fault(); the failure
    /// hook sentinel-bumps these so the waiters wake.
    std::vector<std::uint64_t> fault_waits;
    /// Released qnodes parked until stale in-flight writes (late handoffs /
    /// repair grants targeting the old acquisition) can no longer land in a
    /// reused slot.
    std::vector<std::pair<RemotePtr, sim::Time>> quarantine;
    // --- write-combining aggregation (deferred pipeline) ---
    RemotePtr agg_chunk;   ///< staging memory carved from this image's slab
    int agg_target = -1;   ///< 0-based rank the chunk targets; -1 when empty
    std::size_t agg_used = 0;                 ///< staged payload bytes
    std::vector<fabric::ScatterRec> agg_recs; ///< staged records
  };
  std::vector<PerImage> per_image_;
};

// ---------------------------------------------------------------------------
// Collective templates
// ---------------------------------------------------------------------------

template <typename T>
void Runtime::co_broadcast(T* data, std::size_t nelems, int source_image) {
  static_assert(std::is_trivially_copyable_v<T>);
  require_init();
  // Whole-payload dispatch: chunking (and pipelining above one slot) is the
  // engine's job, not the template's.
  broadcast_bytes_any(data, nelems * sizeof(T), source_image - 1);
}

template <typename T>
int Runtime::co_sum_team(const Team& team, T* data, std::size_t nelems) {
  static_assert(std::is_trivially_copyable_v<T>);
  require_init();
  int stat = kStatOk;
  std::size_t done = 0;
  const std::size_t per_chunk = kTeamChunk / sizeof(T);
  while (done < nelems) {
    const std::size_t n = std::min(nelems - done, per_chunk);
    // The combiner works on a whole staged chunk (team_coll_bytes is
    // element-size agnostic).
    auto combine = [n](void* a, const void* b) {
      for (std::size_t i = 0; i < n; ++i) {
        T x, y;
        std::memcpy(&x, static_cast<std::byte*>(a) + i * sizeof(T), sizeof(T));
        std::memcpy(&y, static_cast<const std::byte*>(b) + i * sizeof(T),
                    sizeof(T));
        x = x + y;
        std::memcpy(static_cast<std::byte*>(a) + i * sizeof(T), &x, sizeof(T));
      }
    };
    const int st = team_coll_bytes(team, data + done, n * sizeof(T), combine,
                                   team.members.empty() ? 1 : team.members[0]);
    if (st != kStatOk) stat = st;
    done += n;
  }
  return stat;
}

template <typename T>
void Runtime::co_reduce_impl(T* data, std::size_t nelems, ReduceOp op) {
  static_assert(std::is_trivially_copyable_v<T>);
  require_init();
  auto combine = [op](void* a, const void* b) {
    T x, y;
    std::memcpy(&x, a, sizeof(T));
    std::memcpy(&y, b, sizeof(T));
    switch (op) {
      case ReduceOp::kSum: x = x + y; break;
      case ReduceOp::kMin: x = y < x ? y : x; break;
      case ReduceOp::kMax: x = x < y ? y : x; break;
      default: break;
    }
    std::memcpy(a, &x, sizeof(T));
  };
  allreduce_bytes_any(data, nelems, sizeof(T), combine);
}

}  // namespace caf
