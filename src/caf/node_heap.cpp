#include "caf/node_heap.hpp"

namespace caf {

NodeHeap::NodeHeap(Conduit& conduit)
    : conduit_(conduit),
      domain_(conduit.rma_domain()),
      channel_(domain_ != nullptr ? domain_->node_transport() : nullptr) {}

int NodeHeap::node_of(int image) const {
  if (domain_ == nullptr) return 0;
  return domain_->fabric().node_of(image - 1);
}

bool NodeHeap::same_node(int image_a, int image_b) const {
  if (domain_ == nullptr) return image_a == image_b;
  return domain_->fabric().same_node(image_a - 1, image_b - 1);
}

int NodeHeap::cpu_domain(int image) const {
  return enabled() ? channel_->domain_of(image - 1) : 0;
}

int NodeHeap::segment_domain(int image) const {
  return enabled() ? channel_->segment_domain(image - 1) : 0;
}

bool NodeHeap::numa_local(int image) const {
  return !enabled() || channel_->numa_local(my_rank(), image - 1);
}

std::byte* NodeHeap::resolve(int image, std::uint64_t off) {
  if (!enabled()) return nullptr;
  const int target = image - 1;
  if (!domain_->fabric().same_node(my_rank(), target)) return nullptr;
  if (off >= domain_->segment_bytes()) return nullptr;
  return domain_->segment(target) + off;
}

sim::Time NodeHeap::copy_cost(int image, std::size_t n) const {
  if (!enabled()) return 0;
  return channel_->copy_cost(my_rank(), image - 1, n);
}

NodeHeapStats NodeHeap::stats() const {
  NodeHeapStats s;
  if (!enabled()) {
    s.images_on_node = 1;
    s.images_per_domain.assign(1, 1);
    return s;
  }
  const net::Fabric& fab = domain_->fabric();
  const int me = my_rank();
  s.node = fab.node_of(me);
  s.numa_domains = channel_->numa_domains();
  s.images_per_domain.assign(static_cast<std::size_t>(s.numa_domains), 0);
  for (int pe = 0; pe < fab.npes(); ++pe) {
    if (fab.node_of(pe) != s.node) continue;
    ++s.images_on_node;
    ++s.images_per_domain[static_cast<std::size_t>(channel_->domain_of(pe))];
  }
  s.ring_pushes = channel_->ring_pushes();
  s.ring_stalls = channel_->ring_stalls();
  s.ring_wraps = channel_->ring_wraps();
  return s;
}

}  // namespace caf
