// caf::future<T> — the single-threaded future/promise core of the RPC layer
// (UPC++-style asynchronous remote execution, see DESIGN.md §4f).
//
// A future is a handle to a shared completion state that the RPC engine
// fulfills from a delivery event (scheduler context) or a failure sweep
// (fiber context). Continuations attached with then() never run in
// scheduler context: fulfillment moves them into the owning image's
// ready-callback queue, and the RPC engine drains that queue on the owner's
// fiber at its next progress point or future-wait — so a continuation may
// freely issue conduit operations.
//
// Failure surfaces through the future's stat channel: an operation whose
// target image dies reports caf::kStatFailedImage (and a derived future
// inherits the first failing constituent's stat), mirroring the Fortran
// 2018 stat= discipline used everywhere else in the runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

namespace caf {

class Runtime;

namespace rpc_detail {

/// Type-erased part of a future's shared state. `sink` points at the owning
/// image's ready-callback queue inside the RPC engine (null for ready-made
/// futures, whose continuations run inline).
struct FutureCore {
  bool ready = false;
  int stat = 0;      ///< caf::StatCode numeric; 0 = ok
  int owner = -1;    ///< 0-based rank owning the continuations
  int target = -1;   ///< 0-based rank the operation addresses (-1: derived)
  Runtime* rt = nullptr;  ///< null => ready-made (nothing to poll)
  std::vector<std::function<void()>>* sink = nullptr;
  std::vector<std::function<void()>> callbacks;

  /// Marks the state complete. Queued continuations are handed to the
  /// owner's ready queue (or run inline for ready-made futures). Idempotent:
  /// a reply racing a failure sweep keeps the first outcome.
  void fulfill(int stat_code) {
    if (ready) return;
    ready = true;
    stat = stat_code;
    auto cbs = std::move(callbacks);
    callbacks.clear();
    for (auto& cb : cbs) {
      if (sink != nullptr) {
        sink->push_back(std::move(cb));
      } else {
        cb();
      }
    }
  }

  /// Runs `cb` when the state completes (inline if it already has).
  void on_ready(std::function<void()> cb) {
    if (ready) {
      cb();
    } else {
      callbacks.push_back(std::move(cb));
    }
  }
};

template <typename T>
struct FutureState : FutureCore {
  std::optional<T> value;
  void set(T v) { value.emplace(std::move(v)); }
};

template <>
struct FutureState<void> : FutureCore {};

}  // namespace rpc_detail

/// Blocks the calling fiber until `core` completes: drains the RPC mailbox
/// and ready continuations, sweeps declared failures against outstanding
/// operations, and parks on the doorbell cell between polls. Defined in
/// rpc.cpp (needs the engine).
void rpc_wait_core(Runtime& rt, rpc_detail::FutureCore& core);

template <typename T>
class future;

namespace rpc_detail {

/// Child state for then()/when_all: inherits owner/runtime/sink from the
/// parent so its continuations keep running on the right fiber.
template <typename R>
std::shared_ptr<FutureState<R>> derive_from(const FutureCore& parent) {
  auto st = std::make_shared<FutureState<R>>();
  st->owner = parent.owner;
  st->rt = parent.rt;
  st->sink = parent.sink;
  return st;
}

}  // namespace rpc_detail

/// A value (or void) that completes asynchronously. Copyable handle; all
/// copies observe the same shared state.
template <typename T>
class future {
 public:
  future() = default;
  explicit future(std::shared_ptr<rpc_detail::FutureState<T>> st)
      : st_(std::move(st)) {}

  bool valid() const { return st_ != nullptr; }
  bool ready() const { return st_ && st_->ready; }
  /// Completion status: 0 (caf::kStatOk) or caf::kStatFailedImage. Only
  /// meaningful once ready.
  int stat() const { return st_ ? st_->stat : 0; }

  /// The completed value. Requires ready() && stat() == 0.
  T& value() {
    if (!ready() || st_->stat != 0 || !st_->value.has_value()) {
      throw std::logic_error("caf::future::value(): not ready or failed");
    }
    return *st_->value;
  }

  /// Blocks the calling fiber until completion; returns the stat code.
  int wait() {
    require();
    if (!st_->ready) {
      if (st_->rt == nullptr) {
        throw std::logic_error("caf::future::wait(): detached future");
      }
      rpc_wait_core(*st_->rt, *st_);
    }
    return st_->stat;
  }

  /// wait() + value(): the blocking get.
  T& get() {
    (void)wait();
    return value();
  }

  /// Chains `f(value)` (or `f()` for future<void>) to run on the owning
  /// image's fiber once this future completes. Returns the future of `f`'s
  /// result. On failure `f` is skipped and the stat propagates.
  template <typename F>
  auto then(F f) {
    require();
    using R = std::invoke_result_t<F, T&>;
    auto child = rpc_detail::derive_from<R>(*st_);
    auto parent = st_;
    parent->on_ready([parent, child, f = std::move(f)]() mutable {
      if (parent->stat != 0 || !parent->value.has_value()) {
        child->fulfill(parent->stat != 0 ? parent->stat : 4 /*failed image*/);
        return;
      }
      if constexpr (std::is_void_v<R>) {
        f(*parent->value);
      } else {
        child->set(f(*parent->value));
      }
      child->fulfill(0);
    });
    return future<R>(child);
  }

  std::shared_ptr<rpc_detail::FutureState<T>> state() const { return st_; }

 private:
  void require() const {
    if (!st_) throw std::logic_error("caf::future: empty handle");
  }
  std::shared_ptr<rpc_detail::FutureState<T>> st_;
};

template <>
class future<void> {
 public:
  future() = default;
  explicit future(std::shared_ptr<rpc_detail::FutureState<void>> st)
      : st_(std::move(st)) {}

  bool valid() const { return st_ != nullptr; }
  bool ready() const { return st_ && st_->ready; }
  int stat() const { return st_ ? st_->stat : 0; }

  int wait() {
    require();
    if (!st_->ready) {
      if (st_->rt == nullptr) {
        throw std::logic_error("caf::future::wait(): detached future");
      }
      rpc_wait_core(*st_->rt, *st_);
    }
    return st_->stat;
  }

  template <typename F>
  auto then(F f) {
    require();
    using R = std::invoke_result_t<F>;
    auto child = rpc_detail::derive_from<R>(*st_);
    auto parent = st_;
    parent->on_ready([parent, child, f = std::move(f)]() mutable {
      if (parent->stat != 0) {
        child->fulfill(parent->stat);
        return;
      }
      if constexpr (std::is_void_v<R>) {
        f();
      } else {
        child->set(f());
      }
      child->fulfill(0);
    });
    return future<R>(child);
  }

  std::shared_ptr<rpc_detail::FutureState<void>> state() const { return st_; }

 private:
  void require() const {
    if (!st_) throw std::logic_error("caf::future: empty handle");
  }
  std::shared_ptr<rpc_detail::FutureState<void>> st_;
};

/// A future that is already complete (UPC++ make_future analogue).
template <typename T>
future<std::decay_t<T>> make_ready_future(T&& v) {
  auto st = std::make_shared<rpc_detail::FutureState<std::decay_t<T>>>();
  st->set(std::forward<T>(v));
  st->fulfill(0);
  return future<std::decay_t<T>>(std::move(st));
}

inline future<void> make_ready_future() {
  auto st = std::make_shared<rpc_detail::FutureState<void>>();
  st->fulfill(0);
  return future<void>(std::move(st));
}

/// Fan-in: completes when every input completes, with the values in input
/// order. The aggregate stat is the first failing constituent's stat.
template <typename T>
future<std::vector<T>> when_all(std::vector<future<T>> fs) {
  auto res = std::make_shared<rpc_detail::FutureState<std::vector<T>>>();
  struct Agg {
    std::vector<std::optional<T>> vals;
    std::size_t remaining = 0;
    int stat = 0;
  };
  auto agg = std::make_shared<Agg>();
  agg->vals.resize(fs.size());
  for (const auto& f : fs) {
    auto st = f.state();
    if (!st) throw std::logic_error("caf::when_all: empty future");
    if (!st->ready) {
      ++agg->remaining;
      if (res->rt == nullptr) {
        res->owner = st->owner;
        res->rt = st->rt;
        res->sink = st->sink;
      }
    }
  }
  auto finish = [res, agg]() {
    std::vector<T> out;
    out.reserve(agg->vals.size());
    for (auto& v : agg->vals) {
      if (v.has_value()) out.push_back(std::move(*v));
    }
    if (agg->stat == 0) res->set(std::move(out));
    res->fulfill(agg->stat);
  };
  if (agg->remaining == 0) {
    for (std::size_t i = 0; i < fs.size(); ++i) {
      auto st = fs[i].state();
      if (st->stat != 0 && agg->stat == 0) agg->stat = st->stat;
      if (st->value.has_value()) agg->vals[i] = *st->value;
    }
    finish();
    return future<std::vector<T>>(std::move(res));
  }
  for (std::size_t i = 0; i < fs.size(); ++i) {
    auto st = fs[i].state();
    if (st->ready) {
      // Already complete at fan-in time: record it here. It did not count
      // toward `remaining`, so it must NOT get an on_ready callback (which
      // would run inline and decrement the count on a pending peer's
      // behalf, firing the aggregate early with partial values).
      if (st->stat != 0 && agg->stat == 0) agg->stat = st->stat;
      if (st->value.has_value()) agg->vals[i] = *st->value;
      continue;
    }
    st->on_ready([st, agg, i, finish]() {
      if (st->stat != 0 && agg->stat == 0) agg->stat = st->stat;
      if (st->value.has_value()) agg->vals[i] = *st->value;
      if (agg->remaining > 0 && --agg->remaining == 0) finish();
    });
  }
  return future<std::vector<T>>(std::move(res));
}

/// Fan-in over void futures: completes when all do; stat aggregates.
inline future<void> when_all(std::vector<future<void>> fs) {
  auto res = std::make_shared<rpc_detail::FutureState<void>>();
  struct Agg {
    std::size_t remaining = 0;
    int stat = 0;
  };
  auto agg = std::make_shared<Agg>();
  for (const auto& f : fs) {
    auto st = f.state();
    if (!st) throw std::logic_error("caf::when_all: empty future");
    if (!st->ready) {
      ++agg->remaining;
      if (res->rt == nullptr) {
        res->owner = st->owner;
        res->rt = st->rt;
        res->sink = st->sink;
      }
    } else if (st->stat != 0 && agg->stat == 0) {
      agg->stat = st->stat;
    }
  }
  if (agg->remaining == 0) {
    res->fulfill(agg->stat);
    return future<void>(std::move(res));
  }
  for (const auto& f : fs) {
    auto st = f.state();
    if (st->ready) continue;
    st->on_ready([st, agg, res]() {
      if (st->stat != 0 && agg->stat == 0) agg->stat = st->stat;
      if (agg->remaining > 0 && --agg->remaining == 0) res->fulfill(agg->stat);
    });
  }
  return future<void>(std::move(res));
}

/// Completion triple of one remote operation (UPC++ source/remote/operation
/// completions): `source` — the request left this image (its buffers are
/// reusable); `remote` — the handler executed at the target; `operation` —
/// the result is available here.
template <typename T>
struct Completions {
  future<void> source;
  future<void> remote;
  future<T> operation;
};

}  // namespace caf
