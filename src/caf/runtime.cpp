#include "caf/runtime.hpp"

#include <cassert>
#include <new>
#include <stdexcept>

#include "fabric/domain.hpp"
#include "sim/engine.hpp"

namespace caf {

Runtime::Runtime(Conduit& conduit, Options opts)
    : conduit_(conduit), opts_(opts) {
  per_image_.resize(conduit_.nranks());
}

void Runtime::require_init() const {
  if (!inited_) {
    throw std::logic_error("caf::Runtime: call init() from every image first");
  }
}

void Runtime::init() {
  // Collective allocations: every image calls in the same order, so every
  // image receives identical offsets (the conduits replay the log).
  const std::uint64_t slab = conduit_.allocate(opts_.nonsym_slab_bytes);
  const std::uint64_t sync =
      conduit_.allocate(static_cast<std::size_t>(num_images()) *
                        sizeof(std::int64_t));
  const std::uint64_t flags =
      conduit_.allocate((kMaxRounds + 1) * sizeof(std::int64_t));
  const std::uint64_t slots = conduit_.allocate(kSlotBytes * (kMaxRounds + 1));
  const std::uint64_t crit = conduit_.allocate(sizeof(std::int64_t));
  const std::uint64_t syncall =
      conduit_.allocate(static_cast<std::size_t>(num_images()) *
                        sizeof(std::int64_t));
  slab_off_ = slab;
  sync_ctrs_off_ = sync;
  coll_flags_off_ = flags;
  coll_slot_off_ = slots;
  critical_off_ = crit;
  syncall_ctrs_off_ = syncall;
  sync_offsets_ready_ = true;

  if (!failure_hook_registered_) {
    failure_hook_registered_ = true;
    conduit_.engine().on_pe_failure([this](const sim::PeFailure& f) {
      handle_image_failure(f.pe, f.at);
    });
  }

  conduit_.post_init();

  auto& st = per_image_[me()];
  st.slab = std::make_unique<shmem::FreeListAllocator>(
      slab_off_, opts_.nonsym_slab_bytes);
  inited_ = true;
  conduit_.barrier();
}

// ---------------------------------------------------------------------------
// Synchronization
// ---------------------------------------------------------------------------

void Runtime::sync_all() {
  require_init();
  ++per_image_[me()].stats.syncs;
  // sync all implies completion of this image's outstanding RMA followed by
  // a global barrier (§IV-B + Table II: sync all → shmem_barrier_all).
  conduit_.quiet();
  conduit_.barrier();
}

void Runtime::sync_images(std::span<const int> images) {
  require_init();
  ++per_image_[me()].stats.syncs;
  conduit_.quiet();
  auto& st = per_image_[me()];
  for (int image : images) {
    const int partner = image - 1;
    ++st.sync_sent[partner];
    // Tell `partner` that I reached a sync point with it: bump my slot in
    // its counter array.
    (void)conduit_.amo_fadd(partner,
                            sync_ctrs_off_ + static_cast<std::uint64_t>(me()) *
                                                 sizeof(std::int64_t),
                            1);
  }
  for (int image : images) {
    const int partner = image - 1;
    conduit_.wait_until(sync_ctrs_off_ + static_cast<std::uint64_t>(partner) *
                                             sizeof(std::int64_t),
                        Cmp::kGe, st.sync_sent[partner]);
  }
}

// ---------------------------------------------------------------------------
// Failed-image semantics (Fortran 2018)
// ---------------------------------------------------------------------------

void Runtime::handle_image_failure(int failed_pe, sim::Time at) {
  // Scheduler context (engine failure hook). A plain `sync all` barrier or
  // `sync images` with the dead partner still hangs — by design, so the
  // engine's drain-time diagnostic identifies who was stuck on whom. Only
  // the stat= path gets woken: poke the sentinel into every survivor's
  // sync-all slot for the dead image so their kGe-round waits fire.
  if (!sync_offsets_ready_) return;
  sim::Engine& eng = conduit_.engine();
  const std::int64_t sentinel = kFailedSentinel;
  const int n = num_images();
  for (int r = 0; r < n; ++r) {
    if (r == failed_pe || eng.pe_failed(r)) continue;
    conduit_.poke(r,
                  syncall_ctrs_off_ + static_cast<std::uint64_t>(failed_pe) *
                                          sizeof(std::int64_t),
                  &sentinel, sizeof sentinel, at);
  }
}

int Runtime::image_status(int image) {
  return conduit_.engine().pe_failed(image - 1) ? kStatFailedImage : kStatOk;
}

std::vector<int> Runtime::failed_images() {
  std::vector<int> out;
  for (const auto& f : conduit_.engine().failures()) out.push_back(f.pe + 1);
  std::sort(out.begin(), out.end());
  return out;
}

int Runtime::sync_all_stat() {
  require_init();
  auto& st = per_image_[me()];
  ++st.stats.syncs;
  sim::Engine& eng = conduit_.engine();
  conduit_.quiet();
  // Counter-based barrier (a failed peer would wedge the conduit's native
  // barrier): round r completes when every live image bumped my slot to r.
  // A dead image's slot reads as kFailedSentinel (>= any round) instead.
  const std::int64_t round = ++st.syncall_round;
  const int n = num_images();
  const int self = me();
  for (int r = 0; r < n; ++r) {
    if (r == self || eng.pe_failed(r)) continue;
    try {
      (void)conduit_.amo_fadd(r,
                              syncall_ctrs_off_ +
                                  static_cast<std::uint64_t>(self) *
                                      sizeof(std::int64_t),
                              1);
    } catch (const fabric::PeerFailedError&) {
      // Raced with the failure; the sentinel covers everyone's waits.
    }
  }
  for (int r = 0; r < n; ++r) {
    if (r == self || eng.pe_failed(r)) continue;
    conduit_.wait_until(syncall_ctrs_off_ + static_cast<std::uint64_t>(r) *
                                                sizeof(std::int64_t),
                        Cmp::kGe, round);
  }
  return eng.failed_count() > 0 ? kStatFailedImage : kStatOk;
}

// ---------------------------------------------------------------------------
// Allocation
// ---------------------------------------------------------------------------

std::uint64_t Runtime::allocate_coarray_bytes(std::size_t bytes) {
  require_init();
  return conduit_.allocate(bytes);
}

std::uint64_t Runtime::allocate_coarray_bytes(std::size_t bytes, int* stat) {
  require_init();
  assert(stat != nullptr);
  if (conduit_.engine().failed_count() > 0) {
    // The allocation is collective; with a dead image it can never complete.
    *stat = kStatFailedImage;
    return 0;
  }
  try {
    const std::uint64_t off = conduit_.allocate(bytes);
    *stat = kStatOk;
    return off;
  } catch (const shmem::HeapExhaustedError&) {
    *stat = kStatOutOfMemory;
    return 0;
  }
}

void Runtime::deallocate_coarray_bytes(std::uint64_t off) {
  require_init();
  conduit_.deallocate(off);
}

RemotePtr Runtime::nonsym_alloc(std::size_t bytes) {
  require_init();
  auto& st = per_image_[me()];
  auto got = st.slab->allocate(bytes);
  if (!got) {
    throw shmem::HeapExhaustedError("caf nonsym_alloc (managed slab)", bytes,
                                    st.slab->bytes_in_use(),
                                    st.slab->capacity());
  }
  if (*got > RemotePtr::kMaxOffset) {
    throw std::runtime_error("nonsym_alloc: offset exceeds 36-bit packing");
  }
  return RemotePtr(me(), *got);
}

void Runtime::nonsym_free(RemotePtr p) {
  require_init();
  if (p.image() != me()) {
    throw std::invalid_argument("nonsym_free: pointer belongs to another image");
  }
  per_image_[me()].slab->release(p.offset());
}

// ---------------------------------------------------------------------------
// RMA (§IV-B): quiet insertion per the paper's translation
// ---------------------------------------------------------------------------

void Runtime::put_bytes(int image, std::uint64_t dst_off, const void* src,
                        std::size_t n) {
  require_init();
  auto& st = per_image_[me()].stats;
  ++st.puts;
  st.put_bytes += n;
  conduit_.put(image - 1, dst_off, src, n, /*nbi=*/false);
  if (opts_.memory_model == MemoryModel::kStrict) conduit_.quiet();
}

void Runtime::get_bytes(void* dst, int image, std::uint64_t src_off,
                        std::size_t n) {
  require_init();
  auto& st = per_image_[me()].stats;
  ++st.gets;
  st.get_bytes += n;
  if (opts_.memory_model == MemoryModel::kStrict) conduit_.quiet();
  conduit_.get(dst, image - 1, src_off, n);
}

int Runtime::put_bytes_stat(int image, std::uint64_t dst_off, const void* src,
                            std::size_t n) {
  require_init();
  if (conduit_.engine().pe_failed(image - 1)) return kStatFailedImage;
  try {
    put_bytes(image, dst_off, src, n);
  } catch (const fabric::PeerFailedError&) {
    return kStatFailedImage;
  }
  return kStatOk;
}

int Runtime::get_bytes_stat(void* dst, int image, std::uint64_t src_off,
                            std::size_t n) {
  require_init();
  if (conduit_.engine().pe_failed(image - 1)) return kStatFailedImage;
  try {
    get_bytes(dst, image, src_off, n);
  } catch (const fabric::PeerFailedError&) {
    return kStatFailedImage;
  }
  return kStatOk;
}

// ---------------------------------------------------------------------------
// MCS coarray locks (§IV-D)
// ---------------------------------------------------------------------------

CoLock Runtime::make_lock() {
  const std::uint64_t off = allocate_coarray_bytes(sizeof(std::int64_t));
  std::memset(local_addr(off), 0, sizeof(std::int64_t));
  conduit_.barrier();  // all images see an unlocked tail
  return CoLock{off};
}

void Runtime::free_lock(CoLock lck) {
  conduit_.barrier();
  deallocate_coarray_bytes(lck.tail_off);
}

namespace {
constexpr std::uint64_t kQnodeBytes = 2 * sizeof(std::int64_t);
constexpr std::uint64_t kLockedField = 0;
constexpr std::uint64_t kNextField = sizeof(std::int64_t);
}  // namespace

void Runtime::lock(CoLock lck, int image) {
  require_init();
  auto& st = per_image_[me()];
  const LockKey key{lck.tail_off, image};
  if (st.held.contains(key)) {
    throw std::logic_error("lock: image already holds this lock");
  }
  // Allocate my qnode out of the managed non-symmetric buffer so the
  // predecessor/successor can reach it remotely (§IV-D).
  const RemotePtr qn = nonsym_alloc(kQnodeBytes);
  std::byte* q = local_addr(qn.offset());
  const std::int64_t one = 1, null = 0;
  std::memcpy(q + kLockedField, &one, sizeof one);   // locked = 1
  std::memcpy(q + kNextField, &null, sizeof null);   // next = nil
  const auto packed = static_cast<std::int64_t>(qn.bits());
  // Atomically splice myself onto the tail of the queue at image `image`.
  const std::int64_t pred_bits =
      conduit_.amo_swap(image - 1, lck.tail_off, packed);
  const RemotePtr pred = RemotePtr::from_bits(
      static_cast<std::uint64_t>(pred_bits));
  if (pred) {
    // Link into my predecessor's next field, then spin locally until the
    // predecessor hands the lock over by resetting my locked field.
    conduit_.put(pred.image(), pred.offset() + kNextField, &packed,
                 sizeof packed, /*nbi=*/false);
    conduit_.wait_until(qn.offset() + kLockedField, Cmp::kEq, 0);
  }
  ++st.stats.locks_acquired;
  st.held.emplace(key, qn);
}

int Runtime::lock_stat(CoLock lck, int image) {
  // lock(lck[j], stat=s): STAT_LOCKED when the executing image already
  // holds the lock; no error termination (Fortran 2008 8.5.6).
  auto& st = per_image_[me()];
  if (st.held.contains(LockKey{lck.tail_off, image})) return kStatLocked;
  lock(lck, image);
  return kStatOk;
}

int Runtime::unlock_stat(CoLock lck, int image) {
  auto& st = per_image_[me()];
  if (!st.held.contains(LockKey{lck.tail_off, image})) return kStatUnlocked;
  unlock(lck, image);
  return kStatOk;
}

bool Runtime::try_lock(CoLock lck, int image) {
  require_init();
  auto& st = per_image_[me()];
  const LockKey key{lck.tail_off, image};
  if (st.held.contains(key)) return false;
  const RemotePtr qn = nonsym_alloc(kQnodeBytes);
  std::byte* q = local_addr(qn.offset());
  const std::int64_t one = 1, null = 0;
  std::memcpy(q + kLockedField, &one, sizeof one);
  std::memcpy(q + kNextField, &null, sizeof null);
  const auto packed = static_cast<std::int64_t>(qn.bits());
  const std::int64_t prev =
      conduit_.amo_cswap(image - 1, lck.tail_off, 0, packed);
  if (prev != 0) {
    nonsym_free(qn);
    return false;
  }
  st.held.emplace(key, qn);
  return true;
}

void Runtime::unlock(CoLock lck, int image) {
  require_init();
  auto& st = per_image_[me()];
  const LockKey key{lck.tail_off, image};
  auto it = st.held.find(key);
  if (it == st.held.end()) {
    throw std::logic_error("unlock: image does not hold this lock");
  }
  const RemotePtr qn = it->second;
  st.held.erase(it);
  const auto packed = static_cast<std::int64_t>(qn.bits());
  // If I am still the tail, swing it back to nil and we are done.
  if (conduit_.amo_cswap(image - 1, lck.tail_off, packed, 0) == packed) {
    nonsym_free(qn);
    return;
  }
  // A successor exists but may not have linked yet: wait for my next field.
  conduit_.wait_until(qn.offset() + kNextField, Cmp::kNe, 0);
  std::int64_t succ_bits = 0;
  std::memcpy(&succ_bits, local_addr(qn.offset() + kNextField),
              sizeof succ_bits);
  const RemotePtr succ =
      RemotePtr::from_bits(static_cast<std::uint64_t>(succ_bits));
  // Hand over: reset the successor's locked field.
  const std::int64_t zero = 0;
  conduit_.put(succ.image(), succ.offset() + kLockedField, &zero, sizeof zero,
               /*nbi=*/false);
  nonsym_free(qn);
}

std::size_t Runtime::held_qnodes() const { return per_image_[me()].held.size(); }

void Runtime::begin_critical() { lock(CoLock{critical_off_}, 1); }
void Runtime::end_critical() { unlock(CoLock{critical_off_}, 1); }

// ---------------------------------------------------------------------------
// Events (extension)
// ---------------------------------------------------------------------------

CoEvent Runtime::make_event() {
  const std::uint64_t off = allocate_coarray_bytes(sizeof(std::int64_t));
  std::memset(local_addr(off), 0, sizeof(std::int64_t));
  conduit_.barrier();
  return CoEvent{off};
}

void Runtime::event_post(CoEvent ev, int image) {
  require_init();
  conduit_.quiet();  // posted work must be visible before the count bumps
  (void)conduit_.amo_fadd(image - 1, ev.count_off, 1);
}

void Runtime::event_wait(CoEvent ev, std::int64_t until_count) {
  require_init();
  auto& consumed = per_image_[me()].event_consumed[ev.count_off];
  conduit_.wait_until(ev.count_off, Cmp::kGe, consumed + until_count);
  consumed += until_count;
}

std::int64_t Runtime::event_query(CoEvent ev) {
  require_init();
  std::int64_t v = 0;
  std::memcpy(&v, local_addr(ev.count_off), sizeof v);
  return v - per_image_[me()].event_consumed[ev.count_off];
}

// ---------------------------------------------------------------------------
// Collectives (paper footnote 1: built from one-sided + atomics, or mapped
// to the conduit's native collectives per Table II)
// ---------------------------------------------------------------------------

void Runtime::coll_broadcast_bytes(void* data, std::size_t nbytes, int root0) {
  const int n = num_images();
  if (n == 1) return;
  const std::uint64_t slot = coll_slot_off_ +
                             static_cast<std::uint64_t>(kMaxRounds) * kSlotBytes;
  // Only the root stages its payload into the slot: a non-root image may
  // reach this point *after* the root's data already landed in its slot
  // (image clocks skew under contention), and staging would overwrite it.
  if (conduit_.has_native_collectives() && opts_.use_native_collectives) {
    if (me() == root0) std::memcpy(local_addr(slot), data, nbytes);
    conduit_.native_broadcast(slot, nbytes, root0);
    std::memcpy(data, local_addr(slot), nbytes);
    return;
  }
  // Generic binomial broadcast over one-sided puts + flag waits.
  auto& st = per_image_[me()];
  const std::int64_t gen = ++st.coll_gen;
  const int vrank = (me() - root0 + n) % n;
  const std::uint64_t flag =
      coll_flags_off_ + static_cast<std::uint64_t>(kMaxRounds) * sizeof(std::int64_t);
  if (vrank == 0) std::memcpy(local_addr(slot), data, nbytes);
  int mask = 1;
  if (vrank != 0) {
    while (!(vrank & mask)) mask <<= 1;
    conduit_.wait_until(flag, Cmp::kGe, gen);
  } else {
    while (mask < n) mask <<= 1;
  }
  for (int m = mask >> 1; m > 0; m >>= 1) {
    if (vrank + m < n) {
      const int child = (vrank + m + root0) % n;
      conduit_.put(child, slot, local_addr(slot), nbytes, /*nbi=*/true);
      conduit_.quiet();
      conduit_.put(child, flag, &gen, sizeof gen, /*nbi=*/true);
    }
  }
  std::memcpy(data, local_addr(slot), nbytes);
}

void Runtime::coll_reduce_bytes(
    void* data, std::size_t nelems, std::size_t elem,
    const std::function<void(void*, const void*)>& comb) {
  const int n = num_images();
  const std::size_t nbytes = nelems * elem;
  assert(nbytes <= kSlotBytes);
  if (n == 1) return;
  auto& st = per_image_[me()];
  const std::int64_t gen = ++st.coll_gen;
  // Binomial combine toward image 1 with a slot + flag per tree level,
  // then broadcast the result.
  int level = 0;
  for (int mask = 1; mask < n; mask <<= 1, ++level) {
    assert(level < kMaxRounds);
    const std::uint64_t slot =
        coll_slot_off_ + static_cast<std::uint64_t>(level) * kSlotBytes;
    const std::uint64_t flag =
        coll_flags_off_ + static_cast<std::uint64_t>(level) * sizeof(std::int64_t);
    if (me() & mask) {
      const int peer = me() - mask;
      conduit_.put(peer, slot, data, nbytes, /*nbi=*/true);
      conduit_.quiet();
      conduit_.put(peer, flag, &gen, sizeof gen, /*nbi=*/true);
      break;
    }
    if (me() + mask < n) {
      conduit_.wait_until(flag, Cmp::kGe, gen);
      for (std::size_t i = 0; i < nelems; ++i) {
        comb(static_cast<std::byte*>(data) + i * elem,
             local_addr(slot) + i * elem);
      }
    }
  }
  coll_broadcast_bytes(data, nbytes, 0);
}

}  // namespace caf
