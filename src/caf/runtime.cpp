#include "caf/runtime.hpp"

#include <cassert>
#include <new>
#include <stdexcept>

#include "caf/rpc.hpp"
#include "fabric/domain.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"

namespace caf {

namespace {

/// Marks the calling image parked for the duration of a blocking runtime
/// wait. The constructor drains the RPC mailbox first and raises the flag
/// with no yield in between, so no request can slip into the gap between
/// the last poll and the block; while the flag is up, a sender's doorbell
/// completion drains this image's mailbox from the event loop.
struct RpcParkGuard {
  RpcEngine* eng;
  int image;
  RpcParkGuard(RpcEngine* e, int img) : eng(e), image(img) {
    if (eng != nullptr) {
      eng->progress();
      eng->set_parked(image, true);
    }
  }
  ~RpcParkGuard() {
    if (eng != nullptr) eng->set_parked(image, false);
  }
  RpcParkGuard(const RpcParkGuard&) = delete;
  RpcParkGuard& operator=(const RpcParkGuard&) = delete;
};

}  // namespace

Runtime::Runtime(Conduit& conduit, Options opts)
    : conduit_(conduit), opts_(opts) {
  per_image_.resize(conduit_.nranks());
  if (opts_.node.enabled) {
    // Enable the node-local shared-segment transport on the conduit's RMA
    // domain (idempotent; conduits without a Domain simply keep the fabric
    // path). Done here — not per-fiber — so it is set before any image runs.
    if (fabric::Domain* d = conduit_.rma_domain()) {
      d->enable_node_transport(opts_.node);
    }
  }
  if (opts_.rpc.enabled) {
    rpc_engine_ = std::make_unique<RpcEngine>(*this, opts_.rpc);
  }
}

Runtime::~Runtime() = default;

void Runtime::rpc_progress() {
  if (rpc_engine_) rpc_engine_->progress();
}

void Runtime::require_init() const {
  if (!inited_) {
    throw std::logic_error("caf::Runtime: call init() from every image first");
  }
}

void Runtime::init() {
  if (opts_.trace && !obs::enabled()) obs::enable({});
  // Failure recovery (robust lock layout, sentinel wake-ups, teams) is only
  // enabled when the run's fault plan schedules kills; fault-free runs keep
  // the original allocations and RMA sequences bit-for-bit.
  resilient_ = conduit_.engine().kills_armed();
  // Collective allocations: every image calls in the same order, so every
  // image receives identical offsets (the conduits replay the log).
  const std::uint64_t slab = conduit_.allocate(opts_.nonsym_slab_bytes);
  const std::uint64_t sync =
      conduit_.allocate(static_cast<std::size_t>(num_images()) *
                        sizeof(std::int64_t));
  const std::uint64_t flags =
      conduit_.allocate((kMaxRounds + 1) * sizeof(std::int64_t));
  const std::uint64_t slots = conduit_.allocate(kSlotBytes * (kMaxRounds + 1));
  const std::uint64_t crit = conduit_.allocate(lock_cell_bytes());
  const std::uint64_t syncall =
      conduit_.allocate(static_cast<std::size_t>(num_images()) *
                        sizeof(std::int64_t));
  slab_off_ = slab;
  sync_ctrs_off_ = sync;
  coll_flags_off_ = flags;
  coll_slot_off_ = slots;
  critical_off_ = crit;
  syncall_ctrs_off_ = syncall;
  std::memset(local_addr(crit), 0, lock_cell_bytes());
  if (resilient_) {
    team_ctrs_off_ = conduit_.allocate(
        static_cast<std::size_t>(num_images()) * sizeof(std::int64_t));
    team_flag_off_ = conduit_.allocate(sizeof(std::int64_t));
    team_coll_ctr_off_ = conduit_.allocate(sizeof(std::int64_t));
    team_slots_off_ =
        conduit_.allocate(static_cast<std::size_t>(num_images()) * kTeamChunk);
    tree_slots_off_ =
        conduit_.allocate(static_cast<std::size_t>(num_images()) * kTeamChunk);
    tree_marks_off_ = conduit_.allocate(static_cast<std::size_t>(num_images()) *
                                        sizeof(std::int64_t));
    std::memset(local_addr(team_ctrs_off_), 0,
                static_cast<std::size_t>(num_images()) * sizeof(std::int64_t));
    std::memset(local_addr(team_flag_off_), 0, sizeof(std::int64_t));
    std::memset(local_addr(team_coll_ctr_off_), 0, sizeof(std::int64_t));
    std::memset(local_addr(tree_marks_off_), 0,
                static_cast<std::size_t>(num_images()) * sizeof(std::int64_t));
  }
  // Topology-aware collectives engine: its symmetric staging areas are
  // allocated here, in the same collective order on every image, whether or
  // not the engine ends up selected — so the heap layout never depends on
  // which dispatch path later runs.
  if (!coll_engine_) {
    coll_engine_ = std::make_unique<CollectiveEngine>(conduit_, opts_.coll);
  }
  coll_engine_->init();
  // RPC mailbox rings / doorbell / ack array: allocated collectively here so
  // every image's symmetric heap carries the same layout (opts_.rpc must be
  // uniform across images, like every other Options field).
  if (rpc_engine_) rpc_engine_->init_symmetric();
  sync_offsets_ready_ = true;

  if (!failure_hook_registered_) {
    failure_hook_registered_ = true;
    conduit_.engine().on_pe_failure([this](const sim::PeFailure& f) {
      handle_image_failure(f.pe, f.at);
    });
  }

  conduit_.post_init();

  auto& st = per_image_[me()];
  st.slab = std::make_unique<shmem::FreeListAllocator>(
      slab_off_, opts_.nonsym_slab_bytes);
  inited_ = true;
  if (opts_.rma.write_combining) {
    // Carve the per-image write-combining chunk out of the managed slab so
    // staged payloads live in registered (remotely-accessible) memory, like
    // the bounce buffers a real runtime would register with the NIC.
    st.agg_chunk = nonsym_alloc(opts_.rma.agg_chunk_bytes);
    st.agg_recs.reserve(64);
  }
  conduit_.barrier();
}

// ---------------------------------------------------------------------------
// Synchronization
// ---------------------------------------------------------------------------

void Runtime::sync_all() {
  require_init();
  ++per_image_[me()].stats.syncs;
  // sync all implies completion of this image's outstanding RMA followed by
  // a global barrier (§IV-B + Table II: sync all → shmem_barrier_all).
  rma_fence();
  // The barrier is an RPC progress point: drain the mailbox, then let
  // senders drain it remotely while this image sits in the barrier.
  RpcParkGuard park(rpc_engine_.get(), me());
  conduit_.barrier();
}

namespace {

bool cmp_i64(std::int64_t v, Cmp cmp, std::int64_t ref) {
  switch (cmp) {
    case Cmp::kEq: return v == ref;
    case Cmp::kNe: return v != ref;
    case Cmp::kGt: return v > ref;
    case Cmp::kGe: return v >= ref;
    case Cmp::kLt: return v < ref;
    case Cmp::kLe: return v <= ref;
  }
  return false;
}

}  // namespace


std::int64_t Runtime::read_local_i64(std::uint64_t off) {
  std::int64_t v = 0;
  std::memcpy(&v, local_addr(off), sizeof v);
  return v;
}

void Runtime::write_local_i64(std::uint64_t off, std::int64_t v) {
  std::memcpy(local_addr(off), &v, sizeof v);
}

bool Runtime::wait_fault(std::uint64_t off, Cmp cmp, std::int64_t value) {
  auto& fw = per_image_[me()].fault_waits;
  for (;;) {
    const std::int64_t raw = read_local_i64(off);
    if (raw >= kSentinelThreshold) {
      // Failure wake-up: restore the true value (local store; this fiber is
      // the only waiter on its own cells) and let the caller reassess.
      write_local_i64(off, raw - kFailedSentinel);
      return true;
    }
    if (cmp_i64(raw, cmp, value)) return false;
    // Register, block, unregister. The cell is registered before any yield
    // (the park guard's drain may advance the fiber clock), so a kill either
    // pokes the registered cell or is re-observed by the raw read above on
    // the next loop turn — no missed wake-ups.
    fw.push_back(off);
    {
      RpcParkGuard park(rpc_engine_.get(), me());
      conduit_.wait_until(off, cmp, value);
    }
    for (auto it = fw.end(); it != fw.begin();) {
      --it;
      if (*it == off) {
        fw.erase(it);
        break;
      }
    }
  }
}

void Runtime::sync_images(std::span<const int> images) {
  require_init();
  ++per_image_[me()].stats.syncs;
  obs::Span sp(obs::Cat::kSyncWait, images.size());
  rma_fence();
  auto& st = per_image_[me()];
  for (int image : images) {
    const int partner = image - 1;
    ++st.sync_sent[partner];
    // Tell `partner` that I reached a sync point with it: bump my slot in
    // its counter array.
    (void)conduit_.amo_fadd(partner,
                            sync_ctrs_off_ + static_cast<std::uint64_t>(me()) *
                                                 sizeof(std::int64_t),
                            1);
  }
  RpcParkGuard park(rpc_engine_.get(), me());
  for (int image : images) {
    const int partner = image - 1;
    const std::uint64_t cell =
        sync_ctrs_off_ + static_cast<std::uint64_t>(partner) *
                             sizeof(std::int64_t);
    conduit_.wait_until(cell, Cmp::kGe, st.sync_sent[partner]);
    // A sentinel-bumped cell (partner died) also satisfies the kGe wait; if
    // the partner never actually reached this sync point, the plain (non-
    // stat) statement has no escape — park forever so the watchdog's drain
    // report names this image and the corpse it waited on.
    std::int64_t raw = read_local_i64(cell);
    if (raw >= kSentinelThreshold &&
        raw - kFailedSentinel < st.sync_sent[partner]) {
      sim::Engine& eng = conduit_.engine();
      eng.current_fiber()->set_block_op("sync images (failed partner)",
                                        partner);
      for (;;) eng.block();
    }
  }
}

int Runtime::sync_images_stat(std::span<const int> images) {
  require_init();
  auto& st = per_image_[me()];
  ++st.stats.syncs;
  obs::Span sp(obs::Cat::kSyncWait, images.size());
  sim::Engine& eng = conduit_.engine();
  bool any_failed = false;
  try {
    rma_fence();
  } catch (const fabric::PeerFailedError&) {
    any_failed = true;  // a staged/in-flight put's target died
  }
  for (int image : images) {
    const int partner = image - 1;
    ++st.sync_sent[partner];
    if (eng.pe_declared(partner)) {
      any_failed = true;
      continue;
    }
    try {
      (void)conduit_.amo_fadd(
          partner,
          sync_ctrs_off_ + static_cast<std::uint64_t>(me()) *
                               sizeof(std::int64_t),
          1);
    } catch (const fabric::PeerFailedError&) {
      any_failed = true;
    }
  }
  RpcParkGuard park(rpc_engine_.get(), me());
  for (int image : images) {
    const int partner = image - 1;
    const std::uint64_t cell =
        sync_ctrs_off_ + static_cast<std::uint64_t>(partner) *
                             sizeof(std::int64_t);
    const std::int64_t need = st.sync_sent[partner];
    for (;;) {
      const std::int64_t raw = read_local_i64(cell);
      const bool dead_mark = raw >= kSentinelThreshold;
      const std::int64_t count = dead_mark ? raw - kFailedSentinel : raw;
      if (dead_mark && count < need) {
        // Partner died before reaching this sync point. The sentinel stays
        // in the cell as a permanent failed-partner mark.
        any_failed = true;
        break;
      }
      if (count >= need) {
        if (eng.pe_declared(partner)) any_failed = true;
        break;
      }
      if (eng.pe_declared(partner)) {
        any_failed = true;
        break;
      }
      // Live partner, not yet arrived: a kGe wait that a sentinel bump
      // (from any kill) also satisfies, so this re-checks after failures.
      conduit_.wait_until(cell, Cmp::kGe, need);
    }
  }
  return any_failed ? kStatFailedImage : kStatOk;
}

bool Runtime::sync_test(int image) {
  require_init();
  auto& st = per_image_[me()];
  const int partner = image - 1;
  bool& pending = st.sync_probe_pending[partner];
  if (!pending) {
    // First probe of a round: run the send half of sync_images — complete
    // my outstanding RMA, then bump my slot in the partner's counter array.
    // This is a bounded round trip (the amo acks), not an unbounded wait.
    rma_fence();
    ++st.sync_sent[partner];
    (void)conduit_.amo_fadd(partner,
                            sync_ctrs_off_ + static_cast<std::uint64_t>(me()) *
                                                 sizeof(std::int64_t),
                            1);
    pending = true;
  }
  // Every probe (including the first) is then a single local read of the
  // partner's slot in my counter array — no blocking, no fiber yield.
  const std::uint64_t cell =
      sync_ctrs_off_ + static_cast<std::uint64_t>(partner) *
                           sizeof(std::int64_t);
  std::int64_t raw = read_local_i64(cell);
  if (raw >= kSentinelThreshold) raw -= kFailedSentinel;  // peek only
  if (raw >= st.sync_sent[partner]) {
    pending = false;
    ++st.stats.syncs;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Failed-image semantics (Fortran 2018)
// ---------------------------------------------------------------------------

void Runtime::handle_image_failure(int failed_pe, sim::Time at) {
  // Scheduler context (engine failure hook). A plain `sync all` barrier or
  // `sync images` with the dead partner still hangs — by design, so the
  // engine's drain-time diagnostic identifies who was stuck on whom. Only
  // the stat= path gets woken: poke the sentinel into every survivor's
  // sync-all slot for the dead image so their kGe-round waits fire.
  if (!sync_offsets_ready_) return;
  sim::Engine& eng = conduit_.engine();
  const std::int64_t sentinel = kFailedSentinel;
  const int n = num_images();
  for (int r = 0; r < n; ++r) {
    if (r == failed_pe || eng.pe_declared(r)) continue;
    conduit_.poke(r,
                  syncall_ctrs_off_ + static_cast<std::uint64_t>(failed_pe) *
                                          sizeof(std::int64_t),
                  &sentinel, sizeof sentinel, at);
  }
  if (!resilient_) return;
  // Additive sentinel bumps (value + kFailedSentinel, preserving the true
  // count underneath) into: the dead image's sync_images slot on every
  // survivor, and every cell a survivor registered through wait_fault().
  // Idempotent: a cell already at/above the threshold is left alone, so a
  // second kill before the waiter runs cannot double-bump it.
  auto bump = [&](int r, std::uint64_t off) {
    std::int64_t v = 0;
    std::memcpy(&v, conduit_.segment(r) + off, sizeof v);
    if (v >= kSentinelThreshold) return;
    v += kFailedSentinel;
    conduit_.poke(r, off, &v, sizeof v, at);
  };
  for (int r = 0; r < n; ++r) {
    if (r == failed_pe || eng.pe_declared(r)) continue;
    bump(r, sync_ctrs_off_ +
                static_cast<std::uint64_t>(failed_pe) * sizeof(std::int64_t));
    for (const std::uint64_t off : per_image_[r].fault_waits) bump(r, off);
  }
}

int Runtime::image_status(int image) {
  return conduit_.engine().pe_declared(image - 1) ? kStatFailedImage : kStatOk;
}

std::vector<int> Runtime::failed_images() {
  std::vector<int> out;
  for (const auto& f : conduit_.engine().declared_failures()) out.push_back(f.pe + 1);
  std::sort(out.begin(), out.end());
  return out;
}

int Runtime::sync_all_stat() {
  require_init();
  auto& st = per_image_[me()];
  ++st.stats.syncs;
  sim::Engine& eng = conduit_.engine();
  bool fence_failed = false;
  try {
    rma_fence();
  } catch (const fabric::PeerFailedError&) {
    fence_failed = true;  // a staged/in-flight put's target died
  }
  // Counter-based barrier (a failed peer would wedge the conduit's native
  // barrier): round r completes when every live image bumped my slot to r.
  // A dead image's slot reads as kFailedSentinel (>= any round) instead.
  const std::int64_t round = ++st.syncall_round;
  const int n = num_images();
  const int self = me();
  for (int r = 0; r < n; ++r) {
    if (r == self || eng.pe_declared(r)) continue;
    try {
      (void)conduit_.amo_fadd(r,
                              syncall_ctrs_off_ +
                                  static_cast<std::uint64_t>(self) *
                                      sizeof(std::int64_t),
                              1);
    } catch (const fabric::PeerFailedError&) {
      // Raced with the failure; the sentinel covers everyone's waits.
    }
  }
  for (int r = 0; r < n; ++r) {
    if (r == self || eng.pe_declared(r)) continue;
    conduit_.wait_until(syncall_ctrs_off_ + static_cast<std::uint64_t>(r) *
                                                sizeof(std::int64_t),
                        Cmp::kGe, round);
  }
  return (fence_failed || eng.declared_count() > 0) ? kStatFailedImage
                                                  : kStatOk;
}

// ---------------------------------------------------------------------------
// Allocation
// ---------------------------------------------------------------------------

std::uint64_t Runtime::allocate_coarray_bytes(std::size_t bytes) {
  require_init();
  // The allocation's implicit barrier is a completion point.
  if (deferred()) rma_fence();
  return conduit_.allocate(bytes);
}

std::uint64_t Runtime::allocate_coarray_bytes(std::size_t bytes, int* stat) {
  require_init();
  assert(stat != nullptr);
  if (conduit_.engine().declared_count() > 0) {
    // The allocation is collective; with a dead image it can never complete.
    *stat = kStatFailedImage;
    return 0;
  }
  try {
    if (deferred()) rma_fence();
    const std::uint64_t off = conduit_.allocate(bytes);
    *stat = kStatOk;
    return off;
  } catch (const shmem::HeapExhaustedError&) {
    *stat = kStatOutOfMemory;
    return 0;
  } catch (const fabric::PeerFailedError&) {
    *stat = kStatFailedImage;  // a staged/in-flight put's target died
    return 0;
  }
}

void Runtime::deallocate_coarray_bytes(std::uint64_t off) {
  require_init();
  if (deferred()) rma_fence();
  conduit_.deallocate(off);
}

RemotePtr Runtime::nonsym_alloc(std::size_t bytes) {
  require_init();
  auto& st = per_image_[me()];
  auto got = st.slab->allocate(bytes);
  if (!got) {
    throw shmem::HeapExhaustedError("caf nonsym_alloc (managed slab)", bytes,
                                    st.slab->bytes_in_use(),
                                    st.slab->capacity());
  }
  if (*got > RemotePtr::kMaxOffset) {
    throw std::runtime_error("nonsym_alloc: offset exceeds 36-bit packing");
  }
  return RemotePtr(me(), *got);
}

void Runtime::nonsym_free(RemotePtr p) {
  require_init();
  if (p.image() != me()) {
    throw std::invalid_argument("nonsym_free: pointer belongs to another image");
  }
  per_image_[me()].slab->release(p.offset());
}

// ---------------------------------------------------------------------------
// Nonblocking RMA pipeline: write-combining aggregation + deferred quiet
// ---------------------------------------------------------------------------

void Runtime::agg_flush() {
  auto& img = per_image_[me()];
  if (img.agg_recs.empty()) return;
  ++img.stats.agg_flushes;
  const int target = img.agg_target;
  img.agg_target = -1;
  // Reset the stage BEFORE issuing: the conduit may throw PeerFailedError
  // (dead target), and the staged records are consumed either way — exactly
  // like nbi puts whose delivery fails after issue.
  const std::size_t used = img.agg_used;
  img.agg_used = 0;
  std::vector<fabric::ScatterRec> recs;
  recs.swap(img.agg_recs);
  conduit_.put_scatter(target, recs.data(), recs.size(),
                       local_addr(img.agg_chunk.offset()), used);
  recs.clear();
  img.agg_recs = std::move(recs);  // keep the capacity
}

void Runtime::rma_fence() {
  ++per_image_[me()].stats.fences;
  obs::Span sp(obs::Cat::kFence);
  if (rpc_engine_) rpc_engine_->progress();  // fence is an RPC progress point
  agg_flush();
  conduit_.quiet();  // tracker-elided when nothing is in flight
}

int Runtime::sync_memory_stat() {
  require_init();
  ++per_image_[me()].stats.fences;
  obs::Span sp(obs::Cat::kFence);
  int stat = kStatOk;
  // Flush and complete independently: a dead staged-chunk target must not
  // keep in-flight nbi puts to live targets from being retired — the
  // replication chain acks on "every *surviving* owner has the bytes".
  try {
    agg_flush();
  } catch (const fabric::PeerFailedError&) {
    stat = kStatFailedImage;
  }
  try {
    conduit_.quiet();
  } catch (const fabric::PeerFailedError&) {
    stat = kStatFailedImage;
  }
  return stat;
}

bool Runtime::stage_put(int rank0, std::uint64_t dst_off, const void* src,
                        std::size_t n) {
  if (!opts_.rma.write_combining || !per_image_[me()].agg_chunk) return false;
  if (n == 0 || n > opts_.rma.agg_max_put) return false;
  auto& img = per_image_[me()];
  if (!img.agg_recs.empty() && img.agg_target != rank0) agg_flush();
  if (img.agg_used + n > opts_.rma.agg_chunk_bytes) agg_flush();
  conduit_.engine().advance(kAggStageCpuNs);
  std::byte* stage = local_addr(img.agg_chunk.offset());
  std::memcpy(stage + img.agg_used, src, n);
  if (!img.agg_recs.empty() &&
      img.agg_recs.back().dst_off + img.agg_recs.back().len == dst_off) {
    // The new bytes extend the previous record's destination range and the
    // staged payload is contiguous by construction: grow it in place.
    img.agg_recs.back().len += static_cast<std::uint32_t>(n);
  } else {
    img.agg_recs.push_back({dst_off, static_cast<std::uint32_t>(n),
                            static_cast<std::uint32_t>(img.agg_used)});
  }
  img.agg_target = rank0;
  img.agg_used += n;
  ++img.stats.agg_staged;
  if (img.agg_used >= opts_.rma.agg_chunk_bytes) agg_flush();
  return true;
}

void Runtime::pipelined_put(int rank0, std::uint64_t dst_off, const void* src,
                            std::size_t n) {
  if (stage_put(rank0, dst_off, src, n)) return;
  // Direct nbi put. If records to the same image are staged, they precede
  // this put in program order — flush them first; the transport's in-order
  // delivery then keeps the memory ordering.
  auto& img = per_image_[me()];
  if (!img.agg_recs.empty() && img.agg_target == rank0) agg_flush();
  conduit_.put(rank0, dst_off, src, n, /*nbi=*/true);
}

// ---------------------------------------------------------------------------
// RMA (§IV-B): quiet insertion per the paper's translation (eager mode), or
// nbi issue with deferred completion (pipeline mode)
// ---------------------------------------------------------------------------

void Runtime::put_bytes(int image, std::uint64_t dst_off, const void* src,
                        std::size_t n) {
  require_init();
  auto& st = per_image_[me()].stats;
  ++st.puts;
  st.put_bytes += n;
  if (deferred()) {
    pipelined_put(image - 1, dst_off, src, n);
    return;
  }
  conduit_.put(image - 1, dst_off, src, n, /*nbi=*/false);
  if (opts_.memory_model == MemoryModel::kStrict) conduit_.quiet();
}

void Runtime::get_bytes(void* dst, int image, std::uint64_t src_off,
                        std::size_t n) {
  require_init();
  auto& st = per_image_[me()].stats;
  ++st.gets;
  st.get_bytes += n;
  if (opts_.memory_model == MemoryModel::kStrict) {
    // A strict-mode get must observe this image's program-order-earlier
    // puts: flush staged records headed to the read target, then complete
    // in-flight puts — but only when the tracker shows any toward it.
    auto& img = per_image_[me()];
    if (!img.agg_recs.empty() && img.agg_target == image - 1) agg_flush();
    if (conduit_.pending(image - 1)) conduit_.quiet();
  }
  conduit_.get(dst, image - 1, src_off, n);
}

int Runtime::put_bytes_stat(int image, std::uint64_t dst_off, const void* src,
                            std::size_t n) {
  require_init();
  if (conduit_.engine().pe_declared(image - 1)) return kStatFailedImage;
  try {
    put_bytes(image, dst_off, src, n);
    // stat= demands synchronous failure reporting: in deferred mode the
    // failure would otherwise surface at some later fence, where no stat=
    // variable is in scope. Completing here keeps the Fortran contract —
    // the stat= put is itself a completion point.
    if (deferred()) rma_fence();
  } catch (const fabric::PeerFailedError&) {
    return kStatFailedImage;
  }
  return kStatOk;
}

int Runtime::get_bytes_stat(void* dst, int image, std::uint64_t src_off,
                            std::size_t n) {
  require_init();
  if (conduit_.engine().pe_declared(image - 1)) return kStatFailedImage;
  try {
    get_bytes(dst, image, src_off, n);
  } catch (const fabric::PeerFailedError&) {
    return kStatFailedImage;
  }
  return kStatOk;
}

// ---------------------------------------------------------------------------
// MCS coarray locks (§IV-D)
// ---------------------------------------------------------------------------

std::size_t Runtime::lock_cell_bytes() const {
  // Non-resilient: the bare MCS tail word. Resilient: tail, holder word,
  // repair mutex, then a 2-word {qnode_bits, pred_bits} record per image so
  // queue repair can reconstruct the waiter list after a failure.
  if (!resilient_) return sizeof(std::int64_t);
  return (3 + 2 * static_cast<std::size_t>(num_images())) *
         sizeof(std::int64_t);
}

CoLock Runtime::make_lock() {
  const std::uint64_t off = allocate_coarray_bytes(lock_cell_bytes());
  std::memset(local_addr(off), 0, lock_cell_bytes());
  conduit_.barrier();  // all images see an unlocked tail
  return CoLock{off};
}

void Runtime::free_lock(CoLock lck) {
  conduit_.barrier();
  deallocate_coarray_bytes(lck.tail_off);
}

namespace {
constexpr std::uint64_t kQnodeBytes = 2 * sizeof(std::int64_t);
constexpr std::uint64_t kLockedField = 0;
constexpr std::uint64_t kNextField = sizeof(std::int64_t);
// Resilient lock-cell layout, offsets from CoLock::tail_off.
constexpr std::uint64_t kTailWord = 0;
constexpr std::uint64_t kHolderWord = sizeof(std::int64_t);
constexpr std::uint64_t kRepairWord = 2 * sizeof(std::int64_t);
constexpr std::uint64_t kRecordsBase = 3 * sizeof(std::int64_t);
constexpr std::uint64_t kRecordBytes = 2 * sizeof(std::int64_t);
// Grant codes written into a waiter's qnode locked field.
constexpr std::int64_t kReclaimGrant = -1;  // lock reclaimed from a corpse
// A record's pred field between "record published" and "tail swap's result
// published": the member is in (or entering) the queue but its predecessor
// is not yet knowable.
constexpr std::int64_t kPendingPred = -1;
// Released qnodes sit out this much virtual time before slab reuse, so a
// late in-flight handoff or repair write cannot land in a recycled slot.
constexpr sim::Time kQuarantineNs = 10'000'000;  // 10 ms virtual
constexpr sim::Time kRepairBackoffNs = 2'000;    // repair-mutex retry gap
}  // namespace

std::uint8_t Runtime::next_epoch() {
  auto& e = per_image_[me()].qnode_epoch;
  e = static_cast<std::uint8_t>((e + 1) & RemotePtr::kMaxEpoch);
  return e;
}

void Runtime::quarantine_qnode(RemotePtr qn) {
  per_image_[me()].quarantine.emplace_back(
      qn, conduit_.engine().now() + kQuarantineNs);
}

void Runtime::drain_quarantine() {
  auto& q = per_image_[me()].quarantine;
  const sim::Time now = conduit_.engine().now();
  for (auto it = q.begin(); it != q.end();) {
    if (it->second <= now) {
      nonsym_free(it->first);
      it = q.erase(it);
    } else {
      ++it;
    }
  }
}

bool Runtime::holds_lock(CoLock lck, int image) const {
  return per_image_[me()].held.contains(LockKey{lck.tail_off, image});
}

void Runtime::lock(CoLock lck, int image) {
  require_init();
  obs::Span sp(obs::Cat::kLockAcquire, 0,
               static_cast<std::uint32_t>(image - 1));
  if (rpc_engine_) rpc_engine_->progress();  // image control = progress point
  if (deferred()) rma_fence();  // lock is an image-control completion point
  auto& st = per_image_[me()];
  const LockKey key{lck.tail_off, image};
  if (st.held.contains(key)) {
    throw std::logic_error("lock: image already holds this lock");
  }
  if (resilient_) {
    bool reclaimed = false;
    if (mcs_lock(lck, image, &reclaimed) != kStatOk) {
      // Fortran semantics: lock without stat= on a failed lock image is an
      // error termination.
      throw std::runtime_error("lock: lock variable's image has failed");
    }
    return;
  }
  // Allocate my qnode out of the managed non-symmetric buffer so the
  // predecessor/successor can reach it remotely (§IV-D).
  const RemotePtr qn = nonsym_alloc(kQnodeBytes);
  std::byte* q = local_addr(qn.offset());
  const std::int64_t one = 1, null = 0;
  std::memcpy(q + kLockedField, &one, sizeof one);   // locked = 1
  std::memcpy(q + kNextField, &null, sizeof null);   // next = nil
  const auto packed = static_cast<std::int64_t>(qn.bits());
  // Atomically splice myself onto the tail of the queue at image `image`.
  const std::int64_t pred_bits =
      conduit_.amo_swap(image - 1, lck.tail_off, packed);
  const RemotePtr pred = RemotePtr::from_bits(
      static_cast<std::uint64_t>(pred_bits));
  if (pred) {
    // Link into my predecessor's next field, then spin locally until the
    // predecessor hands the lock over by resetting my locked field. The
    // link rides nbi: delivery timing is identical, issue is cheaper.
    conduit_.put(pred.image(), pred.offset() + kNextField, &packed,
                 sizeof packed, /*nbi=*/true);
    conduit_.wait_until(qn.offset() + kLockedField, Cmp::kEq, 0);
  }
  ++st.stats.locks_acquired;
  st.held.emplace(key, qn);
}

int Runtime::mcs_lock(CoLock lck, int image, bool* reclaimed) {
  *reclaimed = false;
  drain_quarantine();
  sim::Engine& eng = conduit_.engine();
  auto& st = per_image_[me()];
  const int home = image - 1;
  if (eng.pe_declared(home)) return kStatFailedImage;
  const std::uint64_t L = lck.tail_off;
  const std::uint64_t my_rec =
      L + kRecordsBase + static_cast<std::uint64_t>(me()) * kRecordBytes;
  const RemotePtr slot = nonsym_alloc(kQnodeBytes);
  const RemotePtr qn = RemotePtr::with_epoch(me(), slot.offset(), next_epoch());
  std::byte* q = local_addr(qn.offset());
  const std::int64_t one = 1, null = 0;
  std::memcpy(q + kLockedField, &one, sizeof one);
  std::memcpy(q + kNextField, &null, sizeof null);
  const auto packed = static_cast<std::int64_t>(qn.bits());
  std::int64_t pred_bits = 0;
  try {
    // Publish my record *before* swapping onto the tail, so queue repair
    // can account for me from the instant my swap could land. nbi issue +
    // flush: the quiet is still needed (an AMO is not ordered behind a put
    // by the transport), but the cheap injection is.
    const std::int64_t rec[2] = {packed, kPendingPred};
    conduit_.put(home, my_rec, rec, sizeof rec, /*nbi=*/true);
    conduit_.quiet();
    pred_bits = conduit_.amo_swap(home, L + kTailWord, packed);
    // The pred-record update rides nbi; its flush merges with the next
    // phase's (holder word or predecessor link) single quiet.
    conduit_.put(home, my_rec + sizeof(std::int64_t), &pred_bits,
                 sizeof pred_bits, /*nbi=*/true);
  } catch (const fabric::PeerFailedError&) {
    quarantine_qnode(qn);
    return kStatFailedImage;
  }
  const RemotePtr pred =
      RemotePtr::from_bits(static_cast<std::uint64_t>(pred_bits));
  if (!pred) {
    // Uncontended: record myself as the holder and enter. One flush covers
    // both the pred-record update above and the holder word.
    try {
      conduit_.put(home, L + kHolderWord, &packed, sizeof packed,
                   /*nbi=*/true);
      conduit_.quiet();
    } catch (const fabric::PeerFailedError&) {
      quarantine_qnode(qn);
      return kStatFailedImage;
    }
    st.held.emplace(LockKey{L, image}, qn);
    ++st.stats.locks_acquired;
    return kStatOk;
  }
  // Link into the predecessor's next field. A dead predecessor (or one
  // that dies mid-put) is fine: the repair path below splices me in.
  if (!eng.pe_declared(pred.image())) {
    try {
      conduit_.put(pred.image(), pred.offset() + kNextField, &packed,
                   sizeof packed, /*nbi=*/true);
    } catch (const fabric::PeerFailedError&) {
    }
  }
  // Single flush for the pred-record update and the link put.
  conduit_.quiet();
  for (;;) {
    std::int64_t g = read_local_i64(qn.offset() + kLockedField);
    if (g >= kSentinelThreshold) {
      g -= kFailedSentinel;  // failure bump: restore the true grant state
      write_local_i64(qn.offset() + kLockedField, g);
    }
    if (g == 0 || g == kReclaimGrant) {
      if (g == kReclaimGrant) *reclaimed = true;
      st.held.emplace(LockKey{L, image}, qn);
      ++st.stats.locks_acquired;
      return kStatOk;
    }
    if (eng.pe_declared(home)) {
      quarantine_qnode(qn);
      return kStatFailedImage;
    }
    // Refresh my predecessor from the home-side record: queue repair may
    // have re-linked me behind someone else.
    std::int64_t cur_pred = 0;
    try {
      conduit_.get(&cur_pred, home, my_rec + sizeof(std::int64_t),
                   sizeof cur_pred);
    } catch (const fabric::PeerFailedError&) {
      quarantine_qnode(qn);
      return kStatFailedImage;
    }
    const RemotePtr p =
        RemotePtr::from_bits(static_cast<std::uint64_t>(cur_pred));
    if (cur_pred != kPendingPred && p && eng.pe_declared(p.image())) {
      // Dead predecessor: repair the queue (this may grant me the lock).
      if (repair_mutex_acquire(home, lck) != kStatOk) {
        quarantine_qnode(qn);
        return kStatFailedImage;
      }
      (void)mcs_rebuild(lck, image);
      repair_mutex_release(home, lck);
      continue;
    }
    // Predecessor looks alive: block until the grant lands or a failure
    // bump pokes my locked word (wait_fault registered the cell). Re-check
    // the home first: the cur_pred get above yields, a declaration landing
    // in that window already ran the failure hook, and the hook only pokes
    // cells that were registered when it fired — blocking now would sleep
    // through a grant that can never come.
    if (eng.pe_declared(home)) {
      quarantine_qnode(qn);
      return kStatFailedImage;
    }
    (void)wait_fault(qn.offset() + kLockedField, Cmp::kNe, 1);
  }
}

int Runtime::lock_stat(CoLock lck, int image) {
  obs::Span sp(obs::Cat::kLockAcquire, 0,
               static_cast<std::uint32_t>(image - 1));
  // lock(lck[j], stat=s): STAT_LOCKED when the executing image already
  // holds the lock; no error termination (Fortran 2008 8.5.6). Under
  // failure recovery: STAT_FAILED_IMAGE without acquiring when the lock
  // variable's image is dead, and STAT_FAILED_IMAGE *with* the lock
  // acquired when it was reclaimed from a failed holder (exactly one
  // survivor observes the reclamation) — check holds_lock() to tell the
  // two apart.
  auto& st = per_image_[me()];
  if (st.held.contains(LockKey{lck.tail_off, image})) return kStatLocked;
  if (deferred()) {
    try {
      rma_fence();
    } catch (const fabric::PeerFailedError&) {
      return kStatFailedImage;  // a staged/in-flight put's target died
    }
  }
  if (resilient_) {
    bool reclaimed = false;
    const int s = mcs_lock(lck, image, &reclaimed);
    if (s != kStatOk) return s;
    return reclaimed ? kStatFailedImage : kStatOk;
  }
  lock(lck, image);
  return kStatOk;
}

int Runtime::unlock_stat(CoLock lck, int image) {
  obs::Span sp(obs::Cat::kLockHandoff, 0,
               static_cast<std::uint32_t>(image - 1));
  auto& st = per_image_[me()];
  if (!st.held.contains(LockKey{lck.tail_off, image})) return kStatUnlocked;
  if (deferred()) {
    try {
      rma_fence();
    } catch (const fabric::PeerFailedError&) {
      return kStatFailedImage;  // a staged/in-flight put's target died
    }
  }
  if (resilient_) return mcs_unlock(lck, image);
  unlock(lck, image);
  return kStatOk;
}

bool Runtime::try_lock(CoLock lck, int image) {
  require_init();
  obs::Span sp(obs::Cat::kLockAcquire, 0,
               static_cast<std::uint32_t>(image - 1));
  if (deferred()) rma_fence();
  auto& st = per_image_[me()];
  const LockKey key{lck.tail_off, image};
  if (st.held.contains(key)) return false;
  if (resilient_) return mcs_try_lock(lck, image);
  const RemotePtr qn = nonsym_alloc(kQnodeBytes);
  std::byte* q = local_addr(qn.offset());
  const std::int64_t one = 1, null = 0;
  std::memcpy(q + kLockedField, &one, sizeof one);
  std::memcpy(q + kNextField, &null, sizeof null);
  const auto packed = static_cast<std::int64_t>(qn.bits());
  const std::int64_t prev =
      conduit_.amo_cswap(image - 1, lck.tail_off, 0, packed);
  if (prev != 0) {
    nonsym_free(qn);
    return false;
  }
  st.held.emplace(key, qn);
  return true;
}

bool Runtime::mcs_try_lock(CoLock lck, int image) {
  drain_quarantine();
  sim::Engine& eng = conduit_.engine();
  auto& st = per_image_[me()];
  const int home = image - 1;
  // Dead lock image: fail fast instead of burning RMA timeouts.
  if (eng.pe_declared(home)) return false;
  const std::uint64_t L = lck.tail_off;
  const RemotePtr slot = nonsym_alloc(kQnodeBytes);
  const RemotePtr qn = RemotePtr::with_epoch(me(), slot.offset(), next_epoch());
  std::byte* q = local_addr(qn.offset());
  const std::int64_t one = 1, null = 0;
  std::memcpy(q + kLockedField, &one, sizeof one);
  std::memcpy(q + kNextField, &null, sizeof null);
  const auto packed = static_cast<std::int64_t>(qn.bits());
  try {
    if (conduit_.amo_cswap(home, L + kTailWord, 0, packed) != 0) {
      nonsym_free(qn);  // never published anywhere — safe to reuse at once
      return false;
    }
    // Record + holder word, so repair sees this acquisition.
    const std::int64_t rec[2] = {packed, 0};
    conduit_.put(home,
                 L + kRecordsBase +
                     static_cast<std::uint64_t>(me()) * kRecordBytes,
                 rec, sizeof rec, /*nbi=*/true);
    conduit_.put(home, L + kHolderWord, &packed, sizeof packed, /*nbi=*/true);
    conduit_.quiet();
  } catch (const fabric::PeerFailedError&) {
    quarantine_qnode(qn);
    return false;
  }
  st.held.emplace(LockKey{L, image}, qn);
  ++st.stats.locks_acquired;
  return true;
}

int Runtime::mcs_unlock(CoLock lck, int image) {
  drain_quarantine();
  sim::Engine& eng = conduit_.engine();
  auto& st = per_image_[me()];
  const LockKey key{lck.tail_off, image};
  const RemotePtr qn = st.held.at(key);
  st.held.erase(key);
  const int home = image - 1;
  const std::uint64_t L = lck.tail_off;
  if (eng.pe_declared(home)) {
    // The whole lock cell died with its image; nothing left to release.
    quarantine_qnode(qn);
    return kStatFailedImage;
  }
  const auto packed = static_cast<std::int64_t>(qn.bits());
  const std::int64_t zero2[2] = {0, 0};
  const int n = num_images();
  try {
    // Retire my record first: from here on, repair treats me as gone and
    // my bits in other records/tail as external.
    conduit_.put(home,
                 L + kRecordsBase +
                     static_cast<std::uint64_t>(me()) * kRecordBytes,
                 zero2, sizeof zero2, /*nbi=*/true);
    conduit_.quiet();  // retire must be visible before the tail CAS
    if (conduit_.amo_cswap(home, L + kTailWord, packed, 0) == packed) {
      quarantine_qnode(qn);
      return kStatOk;
    }
  } catch (const fabric::PeerFailedError&) {
    quarantine_qnode(qn);
    return kStatFailedImage;
  }
  // Someone swapped in behind me. Find them and hand over, repairing
  // around corpses as needed.
  for (;;) {
    std::int64_t next_bits = read_local_i64(qn.offset() + kNextField);
    if (next_bits >= kSentinelThreshold) {
      next_bits -= kFailedSentinel;
      write_local_i64(qn.offset() + kNextField, next_bits);
    }
    if (eng.pe_declared(home)) {
      quarantine_qnode(qn);
      return kStatFailedImage;
    }
    if (next_bits != 0) {
      const RemotePtr succ =
          RemotePtr::from_bits(static_cast<std::uint64_t>(next_bits));
      if (!eng.pe_declared(succ.image())) {
        try {
          // Holder word first, then the grant: a successor that dies
          // between the two leaves the holder word naming a corpse, which
          // is exactly what repair keys on. Both ride nbi; when the
          // successor waits on the home image the transport's in-order
          // delivery already sequences them, so one flush suffices.
          conduit_.put(home, L + kHolderWord, &next_bits, sizeof next_bits,
                       /*nbi=*/true);
          if (succ.image() != home) conduit_.quiet();
          const std::int64_t grant = 0;
          conduit_.put(succ.image(), succ.offset() + kLockedField, &grant,
                       sizeof grant, /*nbi=*/true);
          conduit_.quiet();
          quarantine_qnode(qn);
          return kStatOk;
        } catch (const fabric::PeerFailedError&) {
          // fall through to repair
        }
      }
      // Dead successor: splice it out under the repair mutex; the rebuild
      // grants the first live waiter (or empties the queue).
      if (repair_mutex_acquire(home, lck) != kStatOk) {
        quarantine_qnode(qn);
        return kStatFailedImage;
      }
      (void)mcs_rebuild(lck, image);
      repair_mutex_release(home, lck);
      quarantine_qnode(qn);
      return kStatOk;
    }
    // next == 0 but the tail CAS failed: a successor exists somewhere in
    // the pipeline. Snapshot the records to see who.
    std::vector<std::int64_t> snap(static_cast<std::size_t>(3 + 2 * n));
    try {
      conduit_.get(snap.data(), home, L,
                   snap.size() * sizeof(std::int64_t));
    } catch (const fabric::PeerFailedError&) {
      quarantine_qnode(qn);
      return kStatFailedImage;
    }
    int succ_rank = -1;
    bool any_live_pending = false;
    for (int r = 0; r < n; ++r) {
      const std::int64_t qb = snap[static_cast<std::size_t>(3 + 2 * r)];
      const std::int64_t pb = snap[static_cast<std::size_t>(3 + 2 * r + 1)];
      if (qb == 0) continue;
      if (pb == packed) succ_rank = r;
      if (pb == kPendingPred && !eng.pe_declared(r)) any_live_pending = true;
    }
    if (succ_rank >= 0 && !eng.pe_declared(succ_rank)) {
      // Live direct successor: its link put is in flight; wait for it
      // (a failure bump re-opens the scan).
      (void)wait_fault(qn.offset() + kNextField, Cmp::kNe, 0);
      continue;
    }
    const RemotePtr tail = RemotePtr::from_bits(
        static_cast<std::uint64_t>(snap[0]));
    if (succ_rank >= 0 || (tail && eng.pe_declared(tail.image()))) {
      // My successor died (directly visible, or only as a dead tail whose
      // pred-publication never landed): repair. Re-check my next under the
      // mutex first — the link may have raced in.
      if (repair_mutex_acquire(home, lck) != kStatOk) {
        quarantine_qnode(qn);
        return kStatFailedImage;
      }
      std::int64_t nb = read_local_i64(qn.offset() + kNextField);
      if (nb >= kSentinelThreshold) {
        nb -= kFailedSentinel;
        write_local_i64(qn.offset() + kNextField, nb);
      }
      if (nb != 0) {
        repair_mutex_release(home, lck);
        continue;  // normal successor handling above
      }
      const RebuildResult rb = mcs_rebuild(lck, image);
      repair_mutex_release(home, lck);
      if (rb.granted || rb.queue_empty) {
        quarantine_qnode(qn);
        return kStatOk;
      }
      // A live member is still mid-enqueue; its own pass (or a link to my
      // next) resolves things — keep watching.
      continue;
    }
    if (!any_live_pending) {
      // Nobody's record names my qnode and nobody is mid-enqueue, so no
      // one can ever link to me: repair has already moved the queue past
      // my (retired) record. My handoff duty is void.
      quarantine_qnode(qn);
      return kStatOk;
    }
    // A live member is mid-enqueue and may turn out to be my direct
    // successor. Its publication doesn't touch my memory, so poll rather
    // than block.
    eng.advance(kRepairBackoffNs);
  }
}

int Runtime::repair_mutex_acquire(int home, CoLock lck) {
  sim::Engine& eng = conduit_.engine();
  const std::uint64_t mtx = lck.tail_off + kRepairWord;
  const std::int64_t mine = me() + 1;
  for (;;) {
    if (eng.pe_declared(home)) return kStatFailedImage;
    std::int64_t cur = 0;
    try {
      cur = conduit_.amo_cswap(home, mtx, 0, mine);
    } catch (const fabric::PeerFailedError&) {
      return kStatFailedImage;
    }
    if (cur == 0) return kStatOk;
    if (eng.pe_declared(static_cast<int>(cur) - 1)) {
      // The previous repairer died holding the mutex: steal it. The CAS
      // makes the steal race-free among surviving contenders.
      try {
        if (conduit_.amo_cswap(home, mtx, cur, mine) == cur) return kStatOk;
      } catch (const fabric::PeerFailedError&) {
        return kStatFailedImage;
      }
      continue;
    }
    eng.advance(kRepairBackoffNs);
  }
}

void Runtime::repair_mutex_release(int home, CoLock lck) {
  try {
    (void)conduit_.amo_cswap(home, lck.tail_off + kRepairWord, me() + 1, 0);
  } catch (const fabric::PeerFailedError&) {
    // Home died; the mutex died with it.
  }
}

Runtime::RebuildResult Runtime::mcs_rebuild(CoLock lck, int image) {
  // Runs under the repair mutex. Reconstructs the waiter queue from the
  // home-side acquisition records: splices out dead members, re-links the
  // survivors in (repaired) FIFO order, grants the lock when its recorded
  // holder is dead or gone, and swings a dead tail pointer back to the
  // last live member.
  RebuildResult out;
  sim::Engine& eng = conduit_.engine();
  const int home = image - 1;
  const std::uint64_t L = lck.tail_off;
  const int n = num_images();
  struct Node {
    int rank;
    std::int64_t qnode, pred;
    bool alive, pending;
  };
  auto rec_off = [&](int r) {
    return L + kRecordsBase + static_cast<std::uint64_t>(r) * kRecordBytes;
  };
  try {
    std::vector<std::int64_t> snap(static_cast<std::size_t>(3 + 2 * n));
    conduit_.get(snap.data(), home, L, snap.size() * sizeof(std::int64_t));
    const std::int64_t tail_bits = snap[0];
    const std::int64_t holder_bits = snap[1];
    std::vector<Node> nodes;
    std::vector<std::uint64_t> scrub;
    bool live_pending = false;
    for (int r = 0; r < n; ++r) {
      const std::int64_t qb = snap[static_cast<std::size_t>(3 + 2 * r)];
      if (qb == 0) continue;
      const std::int64_t pb = snap[static_cast<std::size_t>(3 + 2 * r + 1)];
      const bool alive = !eng.pe_declared(r);
      const bool pending = pb == kPendingPred;
      if (!alive && pending) {
        // Died mid-enqueue with its predecessor unknown: drop the record
        // entirely so pointers at it read as external.
        scrub.push_back(rec_off(r));
        continue;
      }
      if (alive && pending) live_pending = true;
      nodes.push_back(Node{r, qb, pb, alive, pending});
    }
    auto find = [&](std::int64_t bits) -> Node* {
      if (bits == 0) return nullptr;
      for (auto& nd : nodes)
        if (nd.qnode == bits) return &nd;
      return nullptr;
    };
    if (tail_bits == 0) {
      for (const auto& nd : nodes)
        if (!nd.alive) scrub.push_back(rec_off(nd.rank));
      for (const std::uint64_t off : scrub) {
        const std::int64_t z2[2] = {0, 0};
        conduit_.put(home, off, z2, sizeof z2, /*nbi=*/true);
      }
      conduit_.quiet();
      out.queue_empty = true;
      return out;
    }
    // Head: the recorded holder when its record is present; otherwise the
    // best candidate whose pred is null or names no present record (live
    // preferred, then lowest rank). Preferring live matters: picking a dead
    // candidate over a live (still-holding) one would grant a second owner.
    Node* head = find(holder_bits);
    if (head == nullptr) {
      for (auto& nd : nodes) {
        if (nd.pending) continue;
        if (nd.pred != 0 && find(nd.pred) != nullptr) continue;
        if (head == nullptr || (nd.alive && !head->alive)) head = &nd;
      }
    }
    // Walk successor edges (exact-bit pred matches; epochs make stale
    // pointers miss) to recover the FIFO order, then append live members
    // the chain lost track of, in rank order.
    std::vector<char> in_chain(nodes.size(), 0);
    std::vector<Node*> order;
    for (Node* cur = head; cur != nullptr;) {
      const auto idx = static_cast<std::size_t>(cur - nodes.data());
      if (in_chain[idx]) break;
      in_chain[idx] = 1;
      if (cur->alive) order.push_back(cur);
      Node* succ = nullptr;
      for (auto& nd : nodes) {
        const auto j = static_cast<std::size_t>(&nd - nodes.data());
        if (nd.pending || in_chain[j] || nd.pred != cur->qnode) continue;
        succ = &nd;
        break;
      }
      cur = succ;
    }
    // Members the chain lost track of sit behind a record the walk could
    // not cross. When a live member is still mid-enqueue, that is (or may
    // be) the crossing point: relinking a stranded member onto the prefix
    // would give some predecessor a second successor, and the enqueuer's
    // own link-put races the relink — last write wins and the loser is
    // orphaned with a live, already-departed predecessor it waits on
    // forever. The stranded members' real next-pointer links are intact
    // (they linked into the pending member at enqueue, and the pending
    // member links into its own predecessor once its record lands), so
    // leave them alone; only append when no live enqueue is in flight.
    if (!live_pending) {
      for (auto& nd : nodes) {
        const auto idx = static_cast<std::size_t>(&nd - nodes.data());
        if (nd.pending || in_chain[idx] || !nd.alive) continue;
        order.push_back(&nd);
      }
    }
    for (const auto& nd : nodes)
      if (!nd.alive) scrub.push_back(rec_off(nd.rank));
    // Re-link the surviving order: forward qnode next pointers plus the
    // home-side pred records (idempotent for pairs that were adjacent).
    for (std::size_t i = 1; i < order.size(); ++i) {
      const RemotePtr a =
          RemotePtr::from_bits(static_cast<std::uint64_t>(order[i - 1]->qnode));
      conduit_.put(a.image(), a.offset() + kNextField, &order[i]->qnode,
                   sizeof(std::int64_t), /*nbi=*/true);
      conduit_.put(home, rec_off(order[i]->rank) + sizeof(std::int64_t),
                   &order[i - 1]->qnode, sizeof(std::int64_t), /*nbi=*/true);
    }
    for (const std::uint64_t off : scrub) {
      const std::int64_t z2[2] = {0, 0};
      conduit_.put(home, off, z2, sizeof z2, /*nbi=*/true);
    }
    conduit_.quiet();
    // Grant when the recorded holder is not a live present member that
    // actually holds the lock. A reclaim grant (the head actually owned or
    // was entering ownership of the lock when it died) tells the grantee to
    // report STAT_FAILED_IMAGE.
    const Node* holder_node = find(holder_bits);
    bool held_live = holder_node != nullptr && holder_node->alive;
    if (held_live && !holder_node->pending && holder_node->pred != 0) {
      // A live member can be *named* by the holder word without holding:
      // the handoff is two puts (holder word, then the grant), and a
      // granter that dies between them leaves its successor named but
      // still waiting, with no predecessor left to wake it. When the named
      // holder's recorded predecessor is gone (dead, or retired from the
      // records), read its grant word: locked still 1 means the handoff
      // never completed and repair must deliver it. This is idempotent
      // with an in-flight grant from a live mid-handoff granter — both
      // write the same holder word and the same zero grant.
      const Node* hp = find(holder_node->pred);
      if (hp == nullptr || !hp->alive) {
        const RemotePtr hq = RemotePtr::from_bits(
            static_cast<std::uint64_t>(holder_node->qnode));
        std::int64_t hl = 0;
        conduit_.get(&hl, hq.image(), hq.offset() + kLockedField, sizeof hl);
        if (hl >= kSentinelThreshold) hl -= kFailedSentinel;
        if (hl == 1) held_live = false;
      }
    }
    if (!order.empty() && !held_live) {
      conduit_.put(home, L + kHolderWord, &order[0]->qnode,
                   sizeof(std::int64_t), /*nbi=*/false);
      conduit_.quiet();
      std::int64_t grant = 0;
      if (head != nullptr && !head->alive &&
          (holder_bits == head->qnode || head->pred == 0)) {
        grant = kReclaimGrant;
      }
      const RemotePtr g =
          RemotePtr::from_bits(static_cast<std::uint64_t>(order[0]->qnode));
      conduit_.put(g.image(), g.offset() + kLockedField, &grant,
                   sizeof grant, /*nbi=*/false);
      conduit_.quiet();
      out.granted = true;
    }
    // A dead tail pointer: swing it to the last live member, or clear the
    // queue outright — unless a live member is still mid-enqueue (its swap
    // already landed in this tail chain), in which case leave it for that
    // member's own repair pass.
    const RemotePtr tp =
        RemotePtr::from_bits(static_cast<std::uint64_t>(tail_bits));
    if (tp && eng.pe_declared(tp.image())) {
      if (!order.empty() && !live_pending) {
        // Same caution as above: with a live enqueue in flight the relinked
        // order may be a strict prefix of the real queue, and swinging the
        // tail onto its last member would route new arrivals into next
        // fields the stranded suffix already owns.
        (void)conduit_.amo_cswap(home, L + kTailWord, tail_bits,
                                 order.back()->qnode);
      } else if (order.empty() && !live_pending) {
        if (conduit_.amo_cswap(home, L + kTailWord, tail_bits, 0) ==
            tail_bits) {
          out.queue_empty = true;
        }
      }
    }
  } catch (const fabric::PeerFailedError&) {
    // Home died mid-repair; callers re-check and bail out.
  }
  return out;
}

void Runtime::unlock(CoLock lck, int image) {
  require_init();
  obs::Span sp(obs::Cat::kLockHandoff, 0,
               static_cast<std::uint32_t>(image - 1));
  if (rpc_engine_) rpc_engine_->progress();  // image control = progress point
  // Release consistency: work done inside the critical section (staged or
  // in flight) completes before the lock can be handed to the next holder.
  if (deferred()) rma_fence();
  auto& st = per_image_[me()];
  const LockKey key{lck.tail_off, image};
  auto it = st.held.find(key);
  if (it == st.held.end()) {
    throw std::logic_error("unlock: image does not hold this lock");
  }
  if (resilient_) {
    if (mcs_unlock(lck, image) == kStatFailedImage) {
      throw std::runtime_error("unlock: lock variable's image has failed");
    }
    return;
  }
  const RemotePtr qn = it->second;
  st.held.erase(it);
  const auto packed = static_cast<std::int64_t>(qn.bits());
  // If I am still the tail, swing it back to nil and we are done.
  if (conduit_.amo_cswap(image - 1, lck.tail_off, packed, 0) == packed) {
    nonsym_free(qn);
    return;
  }
  // A successor exists but may not have linked yet: wait for my next field.
  conduit_.wait_until(qn.offset() + kNextField, Cmp::kNe, 0);
  std::int64_t succ_bits = 0;
  std::memcpy(&succ_bits, local_addr(qn.offset() + kNextField),
              sizeof succ_bits);
  const RemotePtr succ =
      RemotePtr::from_bits(static_cast<std::uint64_t>(succ_bits));
  // Hand over: reset the successor's locked field (nbi — the successor
  // wakes at delivery either way; the cheaper issue shortens handoff).
  const std::int64_t zero = 0;
  conduit_.put(succ.image(), succ.offset() + kLockedField, &zero, sizeof zero,
               /*nbi=*/true);
  nonsym_free(qn);
}

std::size_t Runtime::held_qnodes() const { return per_image_[me()].held.size(); }

void Runtime::begin_critical() { lock(CoLock{critical_off_}, 1); }
void Runtime::end_critical() { unlock(CoLock{critical_off_}, 1); }

// ---------------------------------------------------------------------------
// Events (extension)
// ---------------------------------------------------------------------------

CoEvent Runtime::make_event() {
  const std::uint64_t off = allocate_coarray_bytes(sizeof(std::int64_t));
  std::memset(local_addr(off), 0, sizeof(std::int64_t));
  conduit_.barrier();
  return CoEvent{off};
}

void Runtime::event_post(CoEvent ev, int image) {
  require_init();
  rma_fence();  // posted work must be visible before the count bumps
  (void)conduit_.amo_fadd(image - 1, ev.count_off, 1);
}

void Runtime::event_wait(CoEvent ev, std::int64_t until_count) {
  require_init();
  obs::Span sp(obs::Cat::kSyncWait);
  auto& consumed = per_image_[me()].event_consumed[ev.count_off];
  RpcParkGuard park(rpc_engine_.get(), me());
  conduit_.wait_until(ev.count_off, Cmp::kGe, consumed + until_count);
  consumed += until_count;
}

bool Runtime::event_test(CoEvent ev, std::int64_t until_count) {
  require_init();
  // A pure local probe: one read of the count cell, no blocking, no fiber
  // yield on either outcome. Success consumes like event_wait would; the
  // sentinel is peeked through (not written back) like event_query.
  auto& consumed = per_image_[me()].event_consumed[ev.count_off];
  std::int64_t raw = read_local_i64(ev.count_off);
  if (raw >= kSentinelThreshold) raw -= kFailedSentinel;
  if (raw - consumed >= until_count) {
    consumed += until_count;
    return true;
  }
  return false;
}

std::int64_t Runtime::event_query(CoEvent ev) {
  require_init();
  std::int64_t v = 0;
  std::memcpy(&v, local_addr(ev.count_off), sizeof v);
  if (v >= kSentinelThreshold) v -= kFailedSentinel;  // failure-marked cell
  return v - per_image_[me()].event_consumed[ev.count_off];
}

int Runtime::event_post_stat(CoEvent ev, int image) {
  require_init();
  if (conduit_.engine().pe_declared(image - 1)) return kStatFailedImage;
  try {
    event_post(ev, image);
  } catch (const fabric::PeerFailedError&) {
    return kStatFailedImage;
  }
  return kStatOk;
}

int Runtime::event_wait_stat(CoEvent ev, std::int64_t until_count) {
  require_init();
  obs::Span sp(obs::Cat::kSyncWait);
  auto& consumed = per_image_[me()].event_consumed[ev.count_off];
  sim::Engine& eng = conduit_.engine();
  for (;;) {
    std::int64_t raw = read_local_i64(ev.count_off);
    if (raw >= kSentinelThreshold) {
      raw -= kFailedSentinel;
      write_local_i64(ev.count_off, raw);
    }
    if (raw - consumed >= until_count) {
      // Only a satisfied wait advances the consumed ledger: a poster that
      // died mid-post must not leave the count debited below what actually
      // arrived (the classic accounting underflow).
      consumed += until_count;
      return kStatOk;
    }
    if (eng.declared_count() > 0) return kStatFailedImage;
    (void)wait_fault(ev.count_off, Cmp::kGe, consumed + until_count);
  }
}

// ---------------------------------------------------------------------------
// Survivor teams (minimal FORM TEAM facility)
// ---------------------------------------------------------------------------

Team Runtime::form_team(int* stat) {
  require_init();
  sim::Engine& eng = conduit_.engine();
  Team t;
  if (!resilient_) {
    for (int i = 1; i <= num_images(); ++i) t.members.push_back(i);
    if (stat != nullptr) *stat = kStatOk;
    return t;
  }
  // Barrier with every currently-live image, then snapshot the survivors.
  // Two images' snapshots can differ only in images that died mid-formation
  // — which every team operation skips anyway, so the teams interoperate.
  Team all;
  for (int i = 1; i <= num_images(); ++i) {
    if (!eng.pe_declared(i - 1)) all.members.push_back(i);
  }
  (void)team_sync(all);
  for (int i = 1; i <= num_images(); ++i) {
    if (!eng.pe_declared(i - 1)) t.members.push_back(i);
  }
  if (stat != nullptr) {
    *stat = eng.declared_count() > 0 ? kStatFailedImage : kStatOk;
  }
  return t;
}

int Runtime::team_sync(const Team& team) {
  require_init();
  if (!resilient_) {
    ++per_image_[me()].stats.syncs;
    rma_fence();
    // Fault-free team sync takes the engine's hierarchical dissemination
    // barrier: an intra-node counter gather at each leader, log2(nodes)
    // dissemination rounds across leaders only, then an intra-node release.
    if (coll_engine_ != nullptr) {
      coll_engine_->barrier();
    } else {
      conduit_.barrier();
    }
    return kStatOk;
  }
  sim::Engine& eng = conduit_.engine();
  auto& st = per_image_[me()];
  conduit_.quiet();
  bool any_failed = false;
  // Pairwise cumulative counters, like sync images: immune to two members
  // disagreeing about *other* (dead) members' membership.
  for (int image : team.members) {
    const int p = image - 1;
    if (p == me()) continue;
    ++st.team_sent[p];
    if (eng.pe_declared(p)) {
      any_failed = true;
      continue;
    }
    try {
      (void)conduit_.amo_fadd(p,
                              team_ctrs_off_ + static_cast<std::uint64_t>(me()) *
                                                   sizeof(std::int64_t),
                              1);
    } catch (const fabric::PeerFailedError&) {
      any_failed = true;
    }
  }
  for (int image : team.members) {
    const int p = image - 1;
    if (p == me()) continue;
    const std::uint64_t cell =
        team_ctrs_off_ + static_cast<std::uint64_t>(p) * sizeof(std::int64_t);
    const std::int64_t need = st.team_sent[p];
    for (;;) {
      if (read_local_i64(cell) >= need) break;
      if (eng.pe_declared(p)) {
        any_failed = true;
        break;
      }
      (void)wait_fault(cell, Cmp::kGe, need);
    }
  }
  return any_failed ? kStatFailedImage : kStatOk;
}

// ---------------------------------------------------------------------------
// Membership-epoch tree distribution (tentpole part 3)
//
// Team broadcasts and reductions distribute their payload along a node-
// leader tree that the collectives engine re-forms from the engine's
// *declared* membership view whenever the epoch moves: after a kill the
// next collective runs on a tree without the corpse; after a partition
// heals the far-side ranks stay declared, so the survivor tree keeps its
// re-formed shape. The tree path is push-based with bounded-poll receives
// and an unconditional fall back to the original root-slot pull — so a
// stale plan, a mid-collective kill, or a racing epoch bump can cost
// latency but never correctness, and no new hang state exists.
// ---------------------------------------------------------------------------

namespace {
/// One bounded-poll step (virtual ns) and the per-edge patience budget.
/// 256 * 2 us ~ 0.5 ms of virtual patience, far above one tree hop but
/// bounded: an edge that never delivers degrades to the pull path.
constexpr sim::Time kTreePollNs = 2'000;
constexpr int kTreePollSpins = 256;
}  // namespace

const TreePlan& Runtime::team_tree_plan(const Team& team, int root0) {
  sim::Engine& eng = conduit_.engine();
  std::vector<int> live;
  live.reserve(team.members.size());
  for (const int image : team.members) {
    if (!eng.pe_declared(image - 1)) live.push_back(image - 1);
  }
  return coll_engine_->plan_for(live, root0, eng.membership_epoch());
}

void Runtime::tree_mark_snapshot(std::vector<std::int64_t>& out) {
  const std::size_t n = static_cast<std::size_t>(num_images());
  out.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    out[s] = read_local_i64(tree_marks_off_ + s * sizeof(std::int64_t));
  }
}

bool Runtime::team_tree_receive(const TreePlan& plan, void* data,
                                std::size_t nbytes,
                                const std::vector<std::int64_t>& base) {
  const int self = me();
  if (!plan.contains(self)) return false;
  const int parent = plan.parent[static_cast<std::size_t>(self)];
  if (parent < 0) return false;  // I am the root
  sim::Engine& eng = conduit_.engine();
  const std::uint64_t cell =
      tree_marks_off_ + static_cast<std::uint64_t>(parent) * sizeof(std::int64_t);
  for (int spin = 0; spin < kTreePollSpins; ++spin) {
    if (read_local_i64(cell) > base[static_cast<std::size_t>(parent)]) {
      std::memcpy(data,
                  local_addr(tree_slots_off_ +
                             static_cast<std::uint64_t>(parent) * kTeamChunk),
                  nbytes);
      ++obs::registry().counter(self, "coll.tree_recv");
      return true;
    }
    // A parent that died (or was partitioned away) before pushing will
    // never push; a moved epoch means the plan this edge came from is
    // stale. Either way the pull path finishes the collective.
    if (eng.pe_declared(parent) || eng.membership_epoch() != plan.epoch) break;
    eng.advance(kTreePollNs);
  }
  ++obs::registry().counter(self, "coll.tree_fallback");
  return false;
}

void Runtime::team_tree_forward(const TreePlan& plan, const void* data,
                                std::size_t nbytes) {
  const int self = me();
  if (!plan.contains(self)) return;
  sim::Engine& eng = conduit_.engine();
  auto& st = per_image_[self];
  for (const int child : plan.children[static_cast<std::size_t>(self)]) {
    if (eng.pe_declared(child)) continue;
    const std::int64_t mark = ++st.tree_sent[child];
    try {
      // Payload then mark on the same pair: in-order delivery sequences
      // them, and the closing team_sync's quiet retires both.
      conduit_.put(child,
                   tree_slots_off_ + static_cast<std::uint64_t>(self) * kTeamChunk,
                   data, nbytes, /*nbi=*/true);
      conduit_.put(child,
                   tree_marks_off_ +
                       static_cast<std::uint64_t>(self) * sizeof(std::int64_t),
                   &mark, sizeof mark, /*nbi=*/true);
      ++obs::registry().counter(self, "coll.tree_push");
    } catch (const fabric::PeerFailedError&) {
      // The child died mid-push; its own receive path has already given up.
    }
  }
}

int Runtime::team_broadcast_bytes(const Team& team, void* data,
                                  std::size_t nbytes, int root_image) {
  require_init();
  assert(nbytes <= kTeamChunk);
  if (!team.contains(root_image)) {
    throw std::invalid_argument("team_broadcast_bytes: root not a member");
  }
  if (!resilient_) {
    broadcast_bytes_any(data, nbytes, root_image - 1);
    return kStatOk;
  }
  sim::Engine& eng = conduit_.engine();
  const int root0 = root_image - 1;
  int stat = kStatOk;
  if (me() == root0) {
    std::memcpy(local_addr(team_slots_off_ +
                           static_cast<std::uint64_t>(me()) * kTeamChunk),
                data, nbytes);
  }
  // Mark baseline before the entry sync: any strictly newer mark observed
  // after it was pushed for *this* collective (see tree_mark_snapshot).
  auto& base = per_image_[me()].tree_base;
  tree_mark_snapshot(base);
  if (team_sync(team) != kStatOk) stat = kStatFailedImage;
  const TreePlan& plan = team_tree_plan(team, root0);
  if (me() != root0) {
    if (eng.pe_declared(root0)) return kStatFailedImage;
    if (!team_tree_receive(plan, data, nbytes, base)) {
      try {
        conduit_.get(data, root0,
                     team_slots_off_ +
                         static_cast<std::uint64_t>(root0) * kTeamChunk,
                     nbytes);
      } catch (const fabric::PeerFailedError&) {
        return kStatFailedImage;
      }
    }
  }
  team_tree_forward(plan, data, nbytes);
  // Hold the root until every live member got its copy, so a follow-up
  // collective cannot overwrite the staged slot early.
  if (team_sync(team) != kStatOk) stat = kStatFailedImage;
  return stat;
}

int Runtime::team_coll_bytes(const Team& team, void* data, std::size_t nbytes,
                             const std::function<void(void*, const void*)>& comb,
                             int root_image) {
  require_init();
  if (deferred()) {
    try {
      rma_fence();
    } catch (const fabric::PeerFailedError&) {
      return kStatFailedImage;
    }
  }
  assert(nbytes <= kTeamChunk);
  if (team.members.empty()) return kStatFailedImage;
  if (!resilient_) {
    // Full-machine path: the chunk is one opaque element (the combiner works
    // on the whole staged buffer), dispatched like any other allreduce.
    allreduce_bytes_any(data, 1, nbytes, comb);
    return kStatOk;
  }
  sim::Engine& eng = conduit_.engine();
  const int root0 = root_image - 1;
  int stat = kStatOk;
  // Stage my contribution in my own slot; the barrier publishes it.
  std::memcpy(local_addr(team_slots_off_ +
                         static_cast<std::uint64_t>(me()) * kTeamChunk),
              data, nbytes);
  if (team_sync(team) != kStatOk) stat = kStatFailedImage;
  if (eng.pe_declared(root0)) return kStatFailedImage;
  if (me() == root0) {
    // Root-side gather-combine over the live members. A member that dies
    // before its slot is read drops out of the sum (reported via stat).
    std::vector<std::byte> tmp(nbytes);
    for (int image : team.members) {
      const int p = image - 1;
      if (p == root0) continue;
      if (eng.pe_declared(p)) {
        stat = kStatFailedImage;
        continue;
      }
      try {
        conduit_.get(tmp.data(), p,
                     team_slots_off_ +
                         static_cast<std::uint64_t>(p) * kTeamChunk,
                     nbytes);
        comb(data, tmp.data());
      } catch (const fabric::PeerFailedError&) {
        stat = kStatFailedImage;
      }
    }
    std::memcpy(local_addr(team_slots_off_ +
                           static_cast<std::uint64_t>(root0) * kTeamChunk),
                data, nbytes);
  }
  // Result distribution: same membership-epoch tree as team_broadcast_bytes
  // (baseline before the sync that releases the root's pushes; pull from
  // the root slot whenever the tree edge does not deliver).
  auto& base = per_image_[me()].tree_base;
  tree_mark_snapshot(base);
  if (team_sync(team) != kStatOk) stat = kStatFailedImage;
  const TreePlan& plan = team_tree_plan(team, root0);
  if (me() != root0) {
    if (eng.pe_declared(root0)) return kStatFailedImage;
    if (!team_tree_receive(plan, data, nbytes, base)) {
      try {
        conduit_.get(data, root0,
                     team_slots_off_ +
                         static_cast<std::uint64_t>(root0) * kTeamChunk,
                     nbytes);
      } catch (const fabric::PeerFailedError&) {
        return kStatFailedImage;
      }
    }
  }
  team_tree_forward(plan, data, nbytes);
  if (team_sync(team) != kStatOk) stat = kStatFailedImage;
  return stat;
}

// ---------------------------------------------------------------------------
// Collectives (paper footnote 1: built from one-sided + atomics, or mapped
// to the conduit's native collectives per Table II)
// ---------------------------------------------------------------------------

void Runtime::coll_broadcast_bytes(void* data, std::size_t nbytes, int root0) {
  if (deferred()) rma_fence();  // collective = completion point for staged RMA
  const int n = num_images();
  if (n == 1) return;
  const std::uint64_t slot = coll_slot_off_ +
                             static_cast<std::uint64_t>(kMaxRounds) * kSlotBytes;
  // Only the root stages its payload into the slot: a non-root image may
  // reach this point *after* the root's data already landed in its slot
  // (image clocks skew under contention), and staging would overwrite it.
  if (conduit_.has_native_collectives() && opts_.use_native_collectives) {
    if (me() == root0) std::memcpy(local_addr(slot), data, nbytes);
    conduit_.native_broadcast(slot, nbytes, root0);
    std::memcpy(data, local_addr(slot), nbytes);
    return;
  }
  // Generic binomial broadcast over one-sided puts + flag waits.
  auto& st = per_image_[me()];
  const std::int64_t gen = ++st.coll_gen;
  const int vrank = (me() - root0 + n) % n;
  const std::uint64_t flag =
      coll_flags_off_ + static_cast<std::uint64_t>(kMaxRounds) * sizeof(std::int64_t);
  if (vrank == 0) std::memcpy(local_addr(slot), data, nbytes);
  int mask = 1;
  if (vrank != 0) {
    while (!(vrank & mask)) mask <<= 1;
    conduit_.wait_until(flag, Cmp::kGe, gen);
  } else {
    while (mask < n) mask <<= 1;
  }
  for (int m = mask >> 1; m > 0; m >>= 1) {
    if (vrank + m < n) {
      const int child = (vrank + m + root0) % n;
      // Per-target completion: the transport delivers same-pair puts in
      // order, so the flag cannot overtake the payload and no quiet is
      // needed between them. One slow child no longer stalls the fan-out
      // to the remaining subtrees.
      conduit_.put(child, slot, local_addr(slot), nbytes, /*nbi=*/true);
      conduit_.put(child, flag, &gen, sizeof gen, /*nbi=*/true);
    }
  }
  std::memcpy(data, local_addr(slot), nbytes);
}

void Runtime::coll_reduce_bytes(
    void* data, std::size_t nelems, std::size_t elem,
    const std::function<void(void*, const void*)>& comb) {
  if (deferred()) rma_fence();  // collective = completion point for staged RMA
  const int n = num_images();
  const std::size_t nbytes = nelems * elem;
  assert(nbytes <= kSlotBytes);
  if (n == 1) return;
  auto& st = per_image_[me()];
  const std::int64_t gen = ++st.coll_gen;
  // Binomial combine toward image 1 with a slot + flag per tree level,
  // then broadcast the result.
  int level = 0;
  for (int mask = 1; mask < n; mask <<= 1, ++level) {
    assert(level < kMaxRounds);
    const std::uint64_t slot =
        coll_slot_off_ + static_cast<std::uint64_t>(level) * kSlotBytes;
    const std::uint64_t flag =
        coll_flags_off_ + static_cast<std::uint64_t>(level) * sizeof(std::int64_t);
    if (me() & mask) {
      const int peer = me() - mask;
      // In-order same-pair delivery sequences payload before flag; the
      // sender leaves both puts in flight and lets the tracker retire them
      // at the next completion point instead of stalling here.
      conduit_.put(peer, slot, data, nbytes, /*nbi=*/true);
      conduit_.put(peer, flag, &gen, sizeof gen, /*nbi=*/true);
      break;
    }
    if (me() + mask < n) {
      conduit_.wait_until(flag, Cmp::kGe, gen);
      for (std::size_t i = 0; i < nelems; ++i) {
        comb(static_cast<std::byte*>(data) + i * elem,
             local_addr(slot) + i * elem);
      }
    }
  }
  coll_broadcast_bytes(data, nbytes, 0);
}

void Runtime::broadcast_bytes_any(void* data, std::size_t nbytes, int root0) {
  obs::Span sp(obs::Cat::kBroadcast, nbytes,
               static_cast<std::uint32_t>(root0));
  if (deferred()) rma_fence();  // collective = completion point for staged RMA
  // Collective boundary = RPC progress point; stay drainable while blocked
  // inside the collective's internal waits.
  RpcParkGuard park(rpc_engine_.get(), me());
  if (num_images() == 1 || nbytes == 0) return;
  const bool native =
      conduit_.has_native_collectives() && opts_.use_native_collectives;
  if (!native && coll_engine_ != nullptr && !resilient_) {
    coll_engine_->broadcast(data, nbytes, root0);
    return;
  }
  // Native (Table II) mapping, or the resilient-mode fallback: chunk through
  // the legacy staging slot.
  auto* bytes = static_cast<std::byte*>(data);
  std::size_t remaining = nbytes;
  while (remaining > 0) {
    const std::size_t chunk = std::min(remaining, kSlotBytes);
    coll_broadcast_bytes(bytes, chunk, root0);
    bytes += chunk;
    remaining -= chunk;
  }
}

void Runtime::allreduce_bytes_any(
    void* data, std::size_t nelems, std::size_t elem,
    const std::function<void(void*, const void*)>& comb) {
  obs::Span sp(obs::Cat::kReduce, nelems * elem);
  if (deferred()) rma_fence();  // collective = completion point for staged RMA
  // Collective boundary = RPC progress point (see broadcast_bytes_any).
  RpcParkGuard park(rpc_engine_.get(), me());
  if (num_images() == 1 || nelems == 0) return;
  const bool native =
      conduit_.has_native_collectives() && opts_.use_native_collectives;
  if (!native && coll_engine_ != nullptr && !resilient_) {
    coll_engine_->allreduce(data, nelems, elem, comb);
    return;
  }
  auto* bytes = static_cast<std::byte*>(data);
  std::size_t done = 0;
  const std::size_t per_chunk = std::max<std::size_t>(1, kSlotBytes / elem);
  while (done < nelems) {
    const std::size_t n = std::min(nelems - done, per_chunk);
    coll_reduce_bytes(bytes + done * elem, n, elem, comb);
    done += n;
  }
}

}  // namespace caf
