// caf::NodeHeap — the CAF-layer view of the per-node shared symmetric heap.
//
// When the node-local transport (net::NodeChannel, enabled through
// caf::Options::node) is active, every image's symmetric segment is mapped
// into one shared region per node. This facade exposes that capability to
// CAF-level code uniformly across conduits:
//
//   * resolve(image, off) — a direct load/store pointer into a same-node
//     image's segment (the shmem_ptr idiom of §VII, but available on every
//     conduit with a fabric::Domain, not just OpenSHMEM);
//   * NUMA topology queries — which domain an image's cores and heap slice
//     live in, whether an access crosses the socket link;
//   * per-node stats for tests and the intranode ablation bench.
//
// A NodeHeap is cheap to construct (two pointers); Runtime::node_heap()
// hands one out on demand. All image indices are 1-based, like the rest of
// the caf:: surface.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "caf/conduit.hpp"

namespace caf {

/// Shape of the calling image's node under the transport.
struct NodeHeapStats {
  int node = 0;                        ///< node id of the calling image
  int images_on_node = 0;              ///< co-located images (incl. caller)
  int numa_domains = 1;
  std::vector<int> images_per_domain;  ///< CPU-domain occupancy on this node
  std::uint64_t ring_pushes = 0;       ///< machine-wide ring traffic so far
  std::uint64_t ring_stalls = 0;       ///< pushes that hit backpressure
  std::uint64_t ring_wraps = 0;        ///< full ring revolutions
};

class NodeHeap {
 public:
  explicit NodeHeap(Conduit& conduit);

  /// True when the node-local transport is active on this conduit.
  bool enabled() const { return channel_ != nullptr; }

  int node_of(int image) const;
  bool same_node(int image_a, int image_b) const;
  /// CPU NUMA domain of `image`'s core.
  int cpu_domain(int image) const;
  /// NUMA domain holding `image`'s slice of the node-shared heap.
  int segment_domain(int image) const;
  /// True when the calling image reads/writes `image`'s slice without
  /// crossing the socket link.
  bool numa_local(int image) const;

  /// Direct pointer to symmetric offset `off` in `image`'s segment, or
  /// nullptr when the transport is off or `image` is on another node.
  /// Must be called from an image fiber (uses the calling rank).
  std::byte* resolve(int image, std::uint64_t off);

  /// Simulated cost for the calling image to memcpy `n` bytes into/out of
  /// `image`'s slice (NUMA-aware; mirrors what the transport charges).
  sim::Time copy_cost(int image, std::size_t n) const;

  NodeHeapStats stats() const;

 private:
  int my_rank() const { return conduit_.rank(); }

  Conduit& conduit_;
  fabric::Domain* domain_;          ///< null for conduits without a Domain
  net::NodeChannel* channel_;       ///< null when the transport is off
};

}  // namespace caf
