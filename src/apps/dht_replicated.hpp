// Replicated DHT: the Figure-9 table's data plane moved onto the
// caf::repl::ShardStore so entries survive image kills (DESIGN.md §4d).
//
// Sharding mirrors the plain table exactly — shard = key's home image
// (key / buckets_per_image), slot = key % buckets_per_image — so shard S's
// primary starts as image S+1, the same placement Figure 9 measures. The
// difference is that every entry now lives on R owner images, writes chain
// through the ShardStore's lock + sequence + fence protocol, and the table
// keeps an *acked ledger*: per key, how many increments this image was
// told are durable. After a run quiesces, sum the survivors' ledgers per
// key and compare with a replica-fallback read — acknowledged increments
// must never exceed the stored count, kills or not (the count may exceed
// the acks: a retried update whose first attempt partially landed
// re-applies, the documented at-least-once window).
#pragma once

#include <cstdint>
#include <cstring>
#include <unordered_map>

#include "apps/dht.hpp"
#include "caf/replica.hpp"
#include "sim/engine.hpp"

namespace apps::dhtr {

struct Config {
  std::int64_t buckets_per_image = 64;
  int replication = 2;
  int locks_per_image = 8;
  std::uint64_t seed = 1234;
  sim::Time compute_ns = 300;  ///< local work per update (hash, compare)
  /// Same skew knobs as the plain table: hot_percent of operations hit one
  /// of hot_keys popular entries.
  int hot_percent = 0;
  std::int64_t hot_keys = 4;
};

class ReplicatedTable {
 public:
  using Entry = dht::Entry;

  /// Collective: every image constructs one after rt.init() (the ShardStore
  /// ctor allocates the symmetric state and ends with a sync_all).
  ReplicatedTable(caf::Runtime& rt, Config cfg)
      : rt_(rt),
        cfg_(cfg),
        store_(rt, caf::repl::Options{
                       .replication = cfg.replication,
                       .num_shards = static_cast<std::int64_t>(rt.num_images()),
                       .slots_per_shard = cfg.buckets_per_image,
                       .slot_bytes = sizeof(Entry),
                       .num_locks = cfg.locks_per_image,
                   }) {}

  std::int64_t shard_of(std::int64_t key) const {
    return key / cfg_.buckets_per_image;
  }
  std::int64_t slot_of(std::int64_t key) const {
    return key % cfg_.buckets_per_image;
  }
  std::int64_t global_buckets() const {
    return cfg_.buckets_per_image * static_cast<std::int64_t>(rt_.num_images());
  }

  /// One replicated increment of `key`. True = acknowledged (durable on
  /// every surviving owner); the acked ledger records it.
  bool put_inc(std::int64_t key) {
    sim::Engine& eng = *sim::Engine::current();
    const bool ok = store_.update(
        shard_of(key), slot_of(key), [&](void* p) {
          Entry e{};
          std::memcpy(&e, p, sizeof(e));
          eng.advance(cfg_.compute_ns);  // hash/compare work
          e.key = key;
          e.count += 1;
          std::memcpy(p, &e, sizeof(e));
        });
    if (ok) ++acked_[key];
    return ok;
  }

  /// Replica-fallback read of `key`'s count (0 for a never-written entry).
  bool get_count(std::int64_t key, std::int64_t* count) {
    Entry e{};
    if (!store_.read(&e, shard_of(key), slot_of(key))) return false;
    *count = e.count;
    return true;
  }

  /// Per-key acknowledged increments issued by *this image*.
  const std::unordered_map<std::int64_t, std::int64_t>& acked() const {
    return acked_;
  }

  caf::repl::ShardStore& store() { return store_; }
  const Config& config() const { return cfg_; }

 private:
  caf::Runtime& rt_;
  Config cfg_;
  caf::repl::ShardStore store_;
  std::unordered_map<std::int64_t, std::int64_t> acked_;
};

}  // namespace apps::dhtr
