// CAF Himeno benchmark (paper §V-D).
//
// Himeno evaluates incompressible-fluid pressure solves: a 19-point Jacobi
// relaxation of Poisson's equation on a 3-D grid, reporting MFLOPS. The CAF
// version decomposes the grid over images and exchanges halo planes with
// co-indexed strided puts — the "matrix-oriented" multi-dimensional strides
// whose behaviour §V-D analyses (contiguous base dimension → the naive
// per-run putmem path beats 2dim_strided's iput).
//
// The grid is decomposed over dims 2 (y) and 3 (z); dim 1 (x) stays local,
// so +/-y halos are matrix-oriented strided sections and +/-z halos are
// nearly-contiguous plane sections. Only the pressure array p is a coarray;
// the coefficient arrays are image-local host memory, as in the original.
#pragma once

#include <cstdint>

#include "caf/caf.hpp"

namespace apps::himeno {

struct Config {
  int gx = 32;              ///< global interior extents (incl. boundary)
  int gy = 32;
  int gz = 32;
  int py = 1;               ///< image grid over y (py*pz == num_images)
  int pz = 1;
  int iters = 4;
  double flops_per_ns = 4.0;  ///< simulated per-core compute rate
};

struct Result {
  double mflops = 0;
  double gosa = 0;          ///< final residual (validation)
  sim::Time elapsed = 0;
  sim::Time coll_per_iter = 0;  ///< this image's residual co_sum cost
};

/// Picks the most-square (py, pz) decomposition of `images` that divides
/// (gy, gz); throws if none exists.
Config decompose(Config cfg, int images);

class Solver {
 public:
  /// Collective: every image constructs the solver after rt.init().
  Solver(caf::Runtime& rt, Config cfg);

  /// Collective: runs cfg.iters Jacobi iterations; the Result is valid on
  /// every image (gosa is globally reduced each iteration).
  Result run();

  /// Local pressure value (1-based local subscripts incl. ghosts); for tests.
  double p_at(int i, int j, int k) const {
    return const_cast<caf::Coarray<double>&>(p_)(i, j, k);
  }

 private:
  double jacobi_sweep();    // returns local gosa contribution
  void exchange_halos();
  int rank_y() const { return (rt_.this_image() - 1) % cfg_.py; }
  int rank_z() const { return (rt_.this_image() - 1) / cfg_.py; }
  int image_of(int jy, int kz) const { return kz * cfg_.py + jy + 1; }
  int global_j(int local_j) const { return rank_y() * ly_ + (local_j - 1); }
  int global_k(int local_k) const { return rank_z() * lz_ + (local_k - 1); }

  caf::Runtime& rt_;
  Config cfg_;
  int ly_, lz_;             // local interior extents in y, z
  caf::Coarray<double> p_;  // (gx, ly+2, lz+2) with ghost layers
  std::vector<double> wrk2_;
  std::vector<double> pack_;
};

}  // namespace apps::himeno
