// driver::Stack — one-call construction of a full simulated UHCAF stack
// (engine → fabric → communication world → conduit → runtime) for examples
// and benchmark harnesses.
//
// A Stack owns everything; run(body) launches `images` fibers that call
// rt.init() and then the body, and drives the DES engine to completion.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "caf/caf.hpp"
#include "net/fault.hpp"
#include "net/profiles.hpp"

namespace driver {

/// Which UHCAF configuration from the paper's evaluation.
enum class StackKind {
  kShmemCray,     ///< UHCAF over Cray SHMEM (Titan / XC30)
  kShmemMvapich,  ///< UHCAF over MVAPICH2-X SHMEM (Stampede)
  kGasnet,        ///< UHCAF over GASNet (baseline)
  kArmci,         ///< UHCAF over ARMCI (Table I's other conduit)
};

inline const char* name(StackKind k) {
  switch (k) {
    case StackKind::kShmemCray: return "UHCAF-Cray-SHMEM";
    case StackKind::kShmemMvapich: return "UHCAF-MVAPICH2-X-SHMEM";
    case StackKind::kGasnet: return "UHCAF-GASNet";
    case StackKind::kArmci: return "UHCAF-ARMCI";
  }
  return "?";
}

class Stack {
 public:
  /// With an active `plan`, a FaultInjector is attached to the fabric and
  /// armed on the engine before launch, so any scheduled kills mark the
  /// engine and the runtime comes up with failure recovery enabled.
  Stack(StackKind kind, int images, net::Machine machine,
        std::size_t heap_bytes = 8 << 20, caf::Options opts = {},
        net::FaultPlan plan = {})
      : fabric_(net::machine_profile(machine), images) {
    if (plan.active()) {
      injector_ = std::make_unique<net::FaultInjector>(
          plan, images, fabric_.profile().cores_per_node);
      fabric_.set_fault_injector(injector_.get());
      injector_->arm(engine_);
    }
    switch (kind) {
      case StackKind::kShmemCray:
      case StackKind::kShmemMvapich:
        shmem_ = std::make_unique<shmem::World>(
            engine_, fabric_,
            net::sw_profile(kind == StackKind::kShmemCray
                                ? net::Library::kShmemCray
                                : net::Library::kShmemMvapich,
                            machine),
            heap_bytes);
        conduit_ = std::make_unique<caf::ShmemConduit>(*shmem_);
        break;
      case StackKind::kGasnet:
        gasnet_ = std::make_unique<gasnet::World>(
            engine_, fabric_, net::sw_profile(net::Library::kGasnet, machine),
            heap_bytes);
        conduit_ = std::make_unique<caf::GasnetConduit>(*gasnet_);
        break;
      case StackKind::kArmci:
        armci_ = std::make_unique<armci::World>(
            engine_, fabric_, net::sw_profile(net::Library::kArmci, machine),
            heap_bytes);
        conduit_ = std::make_unique<caf::ArmciConduit>(*armci_);
        break;
    }
    rt_ = std::make_unique<caf::Runtime>(*conduit_, opts);
  }

  caf::Runtime& rt() { return *rt_; }
  sim::Engine& engine() { return engine_; }
  net::Fabric& fabric() { return fabric_; }
  net::FaultInjector* injector() { return injector_.get(); }

  /// Launches `body(rt)` on every image (after rt.init()) and runs the
  /// engine to completion. Returns the final virtual time.
  sim::Time run(const std::function<void(caf::Runtime&)>& body) {
    auto main = [this, body] {
      rt_->init();
      body(*rt_);
    };
    if (shmem_) {
      shmem_->launch(main);
    } else if (gasnet_) {
      gasnet_->launch(main);
    } else {
      armci_->launch(main);
    }
    engine_.run();
    return engine_.sim_now();
  }

 private:
  sim::Engine engine_{64 * 1024};
  net::Fabric fabric_;
  std::unique_ptr<net::FaultInjector> injector_;
  std::unique_ptr<shmem::World> shmem_;
  std::unique_ptr<gasnet::World> gasnet_;
  std::unique_ptr<armci::World> armci_;
  std::unique_ptr<caf::Conduit> conduit_;
  std::unique_ptr<caf::Runtime> rt_;
};

}  // namespace driver
