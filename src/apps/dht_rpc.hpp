// DHT updates re-expressed as asynchronous remote execution (DESIGN.md
// §4f): instead of lock / get / modify / put / unlock against the owning
// image (apps/dht.hpp — the paper's §V-C one-sided design), each update
// ships the *operation* to the owner as caf::rpc and the owner's handler
// mutates the bucket locally. Atomicity falls out of handler serialization
// at the target — no coarray lock traffic at all — at the cost of one
// round trip per update and handler CPU billed on the owner.
//
// The update stream (seed, key derivation, hot-key skew) is byte-for-byte
// the stream dht::Table draws, so the two designs are comparable head to
// head: because the key <-> (owner, bucket) mapping is a bijection and the
// count increment commutes, the final table contents are bit-identical to
// the one-sided design's under any completion order (asserted by the
// conformance tests, and the basis of the EXPERIMENTS.md attribution
// table).
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "apps/dht.hpp"
#include "caf/rpc.hpp"
#include "caf/runtime.hpp"
#include "sim/rng.hpp"

namespace apps::dhtrpc {

using dht::Config;
using dht::Entry;

/// The remote update body. Runs at the bucket's owner; `view` resolves to
/// the owner's entry slice. Communication-free, as RPC handlers must be.
/// Returns the bucket's post-update count (exercises the reply path; a
/// production table would use rpc_ff here and a flush at the end).
inline constexpr auto kUpdateFn =
    [](caf::sym_view<Entry> view, std::int64_t bucket, std::int64_t key,
       std::int64_t compute_ns) -> std::int64_t {
  caf::rpc_charge(compute_ns);  // the hash/compare work moves to the owner
  Entry& e = view[static_cast<std::size_t>(bucket)];
  e.key = key;
  e.count += 1;
  return e.count;
};

/// The async-RPC table. Mirrors dht::Table's surface where it matters
/// (run_updates / local_count_sum / config) so drivers can run either
/// design over the same workload.
class Table {
 public:
  Table(caf::Runtime& rt, Config cfg, std::uint64_t data_off, int window)
      : rt_(rt), cfg_(cfg), data_off_(data_off), window_(window) {}

  /// One image's share of the benchmark: `updates_per_image` asynchronous
  /// remote updates, at most `window` in flight; when the window fills, a
  /// when_all fan-in drains it. Returns the number of updates whose reply
  /// confirmed a positive count (== updates_per_image on a fault-free run).
  std::int64_t run_updates() {
    const int me = rt_.this_image();
    const int n = rt_.num_images();
    sim::Rng rng(cfg_.seed * 1000003u + static_cast<std::uint64_t>(me));
    const std::int64_t global_buckets =
        cfg_.buckets_per_image * static_cast<std::int64_t>(n);
    const caf::sym_view<Entry> view{
        data_off_, static_cast<std::uint32_t>(cfg_.buckets_per_image)};
    std::int64_t confirmed = 0;
    std::vector<caf::future<std::int64_t>> window;
    window.reserve(static_cast<std::size_t>(window_));
    const auto drain = [&] {
      auto counts = caf::when_all(std::move(window)).get();
      for (const std::int64_t c : counts) {
        if (c > 0) ++confirmed;
      }
      window.clear();
    };
    for (int u = 0; u < cfg_.updates_per_image; ++u) {
      const bool hot =
          rng.below(100) < static_cast<std::uint64_t>(cfg_.hot_percent);
      const std::int64_t key = static_cast<std::int64_t>(
          hot ? rng.below(static_cast<std::uint64_t>(cfg_.hot_keys))
              : rng.below(static_cast<std::uint64_t>(global_buckets)));
      const int owner = static_cast<int>(key / cfg_.buckets_per_image) + 1;
      const std::int64_t bucket = key % cfg_.buckets_per_image;
      window.push_back(caf::rpc(rt_, owner, kUpdateFn, view, bucket, key,
                                static_cast<std::int64_t>(cfg_.compute_ns)));
      if (window.size() >= static_cast<std::size_t>(window_)) drain();
    }
    if (!window.empty()) drain();
    return confirmed;
  }

  /// Sums the counts in this image's slice (call after a final sync_all);
  /// the global sum must equal num_images * updates_per_image.
  std::int64_t local_count_sum() {
    const auto* entries =
        reinterpret_cast<const Entry*>(rt_.local_addr(data_off_));
    std::int64_t s = 0;
    for (std::int64_t b = 0; b < cfg_.buckets_per_image; ++b) {
      s += entries[b].count;
    }
    return s;
  }

  const Config& config() const { return cfg_; }
  std::uint64_t data_offset() const { return data_off_; }

 private:
  caf::Runtime& rt_;
  Config cfg_;
  std::uint64_t data_off_;
  int window_;
};

/// Collective: call from every image fiber after rt.init() (which must have
/// run with Options::rpc.enabled). Allocates and zeroes the entry slice —
/// the same slice layout as make_caf_table, minus the lock arrays the RPC
/// design does not need.
inline Table make_rpc_table(caf::Runtime& rt, const Config& cfg,
                            int window = 16) {
  const std::uint64_t data_off = rt.allocate_coarray_bytes(
      static_cast<std::size_t>(cfg.buckets_per_image) * sizeof(Entry));
  std::memset(rt.local_addr(data_off), 0,
              static_cast<std::size_t>(cfg.buckets_per_image) * sizeof(Entry));
  rt.sync_all();
  return Table(rt, cfg, data_off, window);
}

}  // namespace apps::dhtrpc
