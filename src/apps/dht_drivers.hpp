// Collective setup helpers that build a dht::Table over each runtime:
// the UHCAF runtime (any conduit) and the Cray-CAF baseline. Both zero the
// entry slice and build one MCS/ticket lock per stripe.
#pragma once

#include <cstring>

#include "apps/dht.hpp"
#include "caf/runtime.hpp"
#include "craycaf/craycaf.hpp"

namespace apps::dht {

// run_updates_resilient assumes both runtimes agree on stat= numerics.
static_assert(static_cast<int>(caf::kStatOk) == craycaf::kStatOk &&
                  static_cast<int>(caf::kStatFailedImage) ==
                      craycaf::kStatFailedImage,
              "dht degraded mode relies on caf/craycaf stat code alignment");

/// Collective: call from every image fiber after rt.init().
inline Table<caf::Runtime, caf::CoLock> make_caf_table(caf::Runtime& rt,
                                                       const Config& cfg) {
  const std::uint64_t data_off = rt.allocate_coarray_bytes(
      static_cast<std::size_t>(cfg.buckets_per_image) * sizeof(Entry));
  std::memset(rt.local_addr(data_off), 0,
              static_cast<std::size_t>(cfg.buckets_per_image) * sizeof(Entry));
  std::vector<caf::CoLock> locks;
  locks.reserve(static_cast<std::size_t>(cfg.locks_per_image));
  for (int i = 0; i < cfg.locks_per_image; ++i) {
    locks.push_back(rt.make_lock());
  }
  rt.sync_all();
  return Table<caf::Runtime, caf::CoLock>(rt, cfg, data_off, std::move(locks));
}

inline Table<craycaf::Runtime, craycaf::CoLock> make_craycaf_table(
    craycaf::Runtime& rt, const Config& cfg) {
  const std::uint64_t data_off = rt.allocate(
      static_cast<std::size_t>(cfg.buckets_per_image) * sizeof(Entry));
  std::memset(rt.local_addr(data_off), 0,
              static_cast<std::size_t>(cfg.buckets_per_image) * sizeof(Entry));
  std::vector<craycaf::CoLock> locks;
  locks.reserve(static_cast<std::size_t>(cfg.locks_per_image));
  for (int i = 0; i < cfg.locks_per_image; ++i) {
    locks.push_back(rt.make_lock());
  }
  rt.sync_all();
  return Table<craycaf::Runtime, craycaf::CoLock>(rt, cfg, data_off,
                                                  std::move(locks));
}

}  // namespace apps::dht
