// Distributed hash table benchmark (paper §V-C, after Maynard's CUG'12
// one-sided comparison code).
//
// Each image owns a slice of a global table of (key, count) entries and
// repeatedly updates *random* entries anywhere in the table. Updates to an
// entry must be atomic, which is achieved with coarray locks: the table is
// striped over per-image lock arrays, an updater acquires the lock at the
// owning image, get-modify-puts the entry, and releases.
//
// The benchmark is templated over the runtime so that the same workload
// runs on caf::Runtime (UHCAF over SHMEM or GASNet) and craycaf::Runtime
// (the Cray baseline) — exactly the three curves of Figure 9. The caller
// performs the collective setup (allocate the entry slice and the lock
// array) and hands the handles in; see make_caf_table / make_craycaf_table
// in the benches and tests.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/obs.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace apps::dht {

struct Config {
  std::int64_t buckets_per_image = 256;
  int updates_per_image = 32;
  int locks_per_image = 16;     ///< buckets share locks round-robin
  std::uint64_t seed = 1234;
  sim::Time compute_ns = 300;   ///< local work per update (hash, compare)
  /// Key skew: this percentage of updates hit one of `hot_keys` popular
  /// entries (real key streams are Zipf-like); the induced lock contention
  /// is what separates the lock designs in Figure 9.
  int hot_percent = 0;
  std::int64_t hot_keys = 4;
};

struct Entry {
  std::int64_t key;
  std::int64_t count;
};

/// The benchmark body, generic over the runtime (RT) and its lock handle
/// type (LockT). RT must provide this_image(), num_images(),
/// lock(LockT, image), unlock(LockT, image), get_bytes, put_bytes,
/// local_addr.
template <typename RT, typename LockT>
class Table {
 public:
  Table(RT& rt, Config cfg, std::uint64_t data_off, std::vector<LockT> locks)
      : rt_(rt), cfg_(cfg), data_off_(data_off), locks_(std::move(locks)) {}

  /// One image's share of the benchmark: `updates_per_image` random
  /// lock-get-modify-put-unlock cycles.
  void run_updates() {
    sim::Engine& eng = *sim::Engine::current();
    const int me = rt_.this_image();
    const int n = rt_.num_images();
    sim::Rng rng(cfg_.seed * 1000003u + static_cast<std::uint64_t>(me));
    const std::int64_t global_buckets =
        cfg_.buckets_per_image * static_cast<std::int64_t>(n);
    for (int u = 0; u < cfg_.updates_per_image; ++u) {
      const bool hot = rng.below(100) < static_cast<std::uint64_t>(cfg_.hot_percent);
      const std::int64_t key = static_cast<std::int64_t>(
          hot ? rng.below(static_cast<std::uint64_t>(cfg_.hot_keys))
              : rng.below(static_cast<std::uint64_t>(global_buckets)));
      const int owner = static_cast<int>(key / cfg_.buckets_per_image) + 1;
      const std::int64_t bucket = key % cfg_.buckets_per_image;
      const LockT lck =
          locks_[static_cast<std::size_t>(bucket % cfg_.locks_per_image)];
      rt_.lock(lck, owner);
      Entry e{};
      const std::uint64_t entry_off =
          data_off_ + static_cast<std::uint64_t>(bucket) * sizeof(Entry);
      rt_.get_bytes(&e, owner, entry_off, sizeof(Entry));
      eng.advance(cfg_.compute_ns);  // hash/compare work
      e.key = key;
      e.count += 1;
      rt_.put_bytes(owner, entry_off, &e, sizeof(Entry));
      rt_.unlock(lck, owner);
    }
  }

  /// Degraded-mode benchmark body: the same update stream as run_updates,
  /// but failure-aware. Updates whose owning image has failed are
  /// *redirected* to the next live image in the ring (same bucket index, so
  /// the survivor's slice absorbs the dead slice's traffic); locks held by
  /// dead images are reclaimed via lock_stat; updates that cannot land
  /// anywhere live are skipped, with full accounting. RT must additionally
  /// provide image_status, lock_stat, unlock_stat, get_bytes_stat,
  /// put_bytes_stat with caf::StatCode-aligned return values.
  ///
  /// Classification counters land in the obs registry (keyed by this
  /// image's 0-based rank): dht.attempted, dht.applied, dht.redirected,
  /// dht.skipped, dht.reclaimed (lock acquisitions that reclaimed a dead
  /// holder's lock), dht.applied_pre / dht.applied_post (before/after the
  /// first observed failure), and dht.first_reclaim_ns_plus1 (virtual time
  /// of the first reclaim + 1; 0 means none happened).
  ///
  /// Returns applied_to: applied_to[i] = updates this image applied whose
  /// final target was image i (1-based). For every surviving target t, the
  /// sum of survivors' applied_to[t] is a lower bound on t's
  /// local_count_sum() (dead updaters may have landed extra updates before
  /// dying).
  std::vector<std::int64_t> run_updates_resilient() {
    constexpr int kOk = 0;           // caf::kStatOk == craycaf::kStatOk
    constexpr int kFailedImage = 4;  // STAT_FAILED_IMAGE on both runtimes
    sim::Engine& eng = *sim::Engine::current();
    const int me = rt_.this_image();
    const int n = rt_.num_images();
    std::vector<std::int64_t> applied_to(static_cast<std::size_t>(n) + 1, 0);
    auto& reg = obs::registry();
    DegradedCounters st{
        &reg.counter(me - 1, "dht.attempted"),
        &reg.counter(me - 1, "dht.applied"),
        &reg.counter(me - 1, "dht.redirected"),
        &reg.counter(me - 1, "dht.skipped"),
        &reg.counter(me - 1, "dht.reclaimed"),
        &reg.counter(me - 1, "dht.applied_pre"),
        &reg.counter(me - 1, "dht.applied_post"),
        &reg.counter(me - 1, "dht.first_reclaim_ns_plus1"),
    };
    sim::Rng rng(cfg_.seed * 1000003u + static_cast<std::uint64_t>(me));
    const std::int64_t global_buckets =
        cfg_.buckets_per_image * static_cast<std::int64_t>(n);
    for (int u = 0; u < cfg_.updates_per_image; ++u) {
      ++*st.attempted;
      const bool hot =
          rng.below(100) < static_cast<std::uint64_t>(cfg_.hot_percent);
      const std::int64_t key = static_cast<std::int64_t>(
          hot ? rng.below(static_cast<std::uint64_t>(cfg_.hot_keys))
              : rng.below(static_cast<std::uint64_t>(global_buckets)));
      const int owner = static_cast<int>(key / cfg_.buckets_per_image) + 1;
      const std::int64_t bucket = key % cfg_.buckets_per_image;
      // Pick the target: the key's home image, or — if it has failed — the
      // next live image around the ring.
      int target = 0;
      for (int d = 0; d < n; ++d) {
        const int cand = (owner - 1 + d) % n + 1;
        if (rt_.image_status(cand) == kOk) {
          target = cand;
          break;
        }
      }
      if (target == 0) {  // every image dead but us mid-kill; nothing to do
        ++*st.skipped;
        continue;
      }
      if (target != owner) ++*st.redirected;
      const LockT lck =
          locks_[static_cast<std::size_t>(bucket % cfg_.locks_per_image)];
      const int lst = rt_.lock_stat(lck, target);
      if (lst == kFailedImage) {
        if (rt_.image_status(target) != kOk) {
          // The target died under us; the lock cell is gone with it.
          // unlock_stat is a safe no-op whether or not we acquired.
          (void)rt_.unlock_stat(lck, target);
          ++*st.skipped;
          continue;
        }
        // Target is alive, so STAT_FAILED_IMAGE means we hold the lock and
        // the acquisition reclaimed it from a dead holder.
        ++*st.reclaimed;
        if (*st.first_reclaim_ns_plus1 == 0) {
          *st.first_reclaim_ns_plus1 =
              static_cast<std::uint64_t>(eng.now()) + 1;
        }
      } else if (lst != kOk) {
        ++*st.skipped;
        continue;
      }
      Entry e{};
      const std::uint64_t entry_off =
          data_off_ + static_cast<std::uint64_t>(bucket) * sizeof(Entry);
      bool ok = rt_.get_bytes_stat(&e, target, entry_off, sizeof(Entry)) == kOk;
      if (ok) {
        eng.advance(cfg_.compute_ns);
        e.key = key;
        e.count += 1;
        ok = rt_.put_bytes_stat(target, entry_off, &e, sizeof(Entry)) == kOk;
      }
      (void)rt_.unlock_stat(lck, target);
      if (ok) {
        ++*st.applied;
        ++applied_to[static_cast<std::size_t>(target)];
        if (eng.declared_count() > 0) ++*st.applied_post;
        else ++*st.applied_pre;
      } else {
        ++*st.skipped;
      }
    }
    return applied_to;
  }

  /// Sums the counts in this image's slice (call after a final sync_all);
  /// the global sum must equal num_images * updates_per_image.
  std::int64_t local_count_sum() {
    const auto* entries =
        reinterpret_cast<const Entry*>(rt_.local_addr(data_off_));
    std::int64_t s = 0;
    for (std::int64_t b = 0; b < cfg_.buckets_per_image; ++b) {
      s += entries[b].count;
    }
    return s;
  }

  const Config& config() const { return cfg_; }

 private:
  /// Registry handles for the degraded-mode classification ("dht.*",
  /// keyed by the running image's 0-based rank).
  struct DegradedCounters {
    std::uint64_t* attempted;
    std::uint64_t* applied;
    std::uint64_t* redirected;
    std::uint64_t* skipped;
    std::uint64_t* reclaimed;
    std::uint64_t* applied_pre;
    std::uint64_t* applied_post;
    std::uint64_t* first_reclaim_ns_plus1;
  };

  RT& rt_;
  Config cfg_;
  std::uint64_t data_off_;
  std::vector<LockT> locks_;
};

}  // namespace apps::dht
