#include "apps/himeno.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"

namespace apps::himeno {

namespace {
// Standard Himeno coefficients: a = (1,1,1,1/6), b = 0, c = 1, bnd = 1,
// omega = 0.8; 34 floating-point operations per cell update.
constexpr double kA3 = 1.0 / 6.0;
constexpr double kOmega = 0.8;
constexpr int kFlopsPerCell = 34;
}  // namespace

Config decompose(Config cfg, int images) {
  int best_py = -1, best_pz = -1;
  double best_ratio = 1e18;
  for (int py = 1; py <= images; ++py) {
    if (images % py != 0) continue;
    const int pz = images / py;
    if (cfg.gy % py != 0 || cfg.gz % pz != 0) continue;
    // Ghosted local planes need at least one interior layer.
    if (cfg.gy / py < 1 || cfg.gz / pz < 1) continue;
    const double ratio =
        std::abs(std::log(static_cast<double>(py) / static_cast<double>(pz)));
    if (ratio < best_ratio) {
      best_ratio = ratio;
      best_py = py;
      best_pz = pz;
    }
  }
  if (best_py < 0) {
    throw std::invalid_argument("himeno: no valid decomposition for " +
                                std::to_string(images) + " images");
  }
  cfg.py = best_py;
  cfg.pz = best_pz;
  return cfg;
}

Solver::Solver(caf::Runtime& rt, Config cfg) : rt_(rt), cfg_(cfg) {
  if (cfg_.py * cfg_.pz != rt_.num_images()) {
    throw std::invalid_argument("himeno: py*pz must equal num_images");
  }
  if (cfg_.gy % cfg_.py != 0 || cfg_.gz % cfg_.pz != 0) {
    throw std::invalid_argument("himeno: grid not divisible by image grid");
  }
  ly_ = cfg_.gy / cfg_.py;
  lz_ = cfg_.gz / cfg_.pz;
  p_ = caf::make_coarray<double>(
      rt_, caf::Shape{cfg_.gx, ly_ + 2, lz_ + 2});
  wrk2_.assign(static_cast<std::size_t>(cfg_.gx) * (ly_ + 2) * (lz_ + 2), 0.0);
  pack_.assign(static_cast<std::size_t>(cfg_.gx) *
                   static_cast<std::size_t>(std::max(ly_, lz_) + 2),
               0.0);
  // Initial pressure field: p = ((k-1)/(gz-1))^2 on the global k index
  // (the standard Himeno initialization), ghosts included where defined.
  for (int k = 1; k <= lz_ + 2; ++k) {
    const int gk = global_k(k);  // 1-based global, ghosts map outside
    const double kk = static_cast<double>(gk - 1) / (cfg_.gz - 1);
    for (int j = 1; j <= ly_ + 2; ++j) {
      for (int i = 1; i <= cfg_.gx; ++i) {
        p_(i, j, k) = kk * kk;
      }
    }
  }
  rt_.sync_all();
}

double Solver::jacobi_sweep() {
  // Compute range: x interior always 2..gx-1; y/z interior restricted to
  // cells whose global index is strictly inside the global boundary.
  const int jlo = global_j(2) >= 2 ? 2 : 3;
  const int jhi = global_j(ly_ + 1) <= cfg_.gy - 1 ? ly_ + 1 : ly_;
  const int klo = global_k(2) >= 2 ? 2 : 3;
  const int khi = global_k(lz_ + 1) <= cfg_.gz - 1 ? lz_ + 1 : lz_;
  double gosa = 0.0;
  auto& p = p_;
  const int sx = 1;
  const int sy = cfg_.gx;
  const int sz = cfg_.gx * (ly_ + 2);
  double* base = p.data();
  auto idx = [&](int i, int j, int k) {
    return (i - 1) * sx + (j - 1) * sy + (k - 1) * sz;
  };
  std::int64_t cells = 0;
  for (int k = klo; k <= khi; ++k) {
    for (int j = jlo; j <= jhi; ++j) {
      for (int i = 2; i <= cfg_.gx - 1; ++i) {
        const auto c = idx(i, j, k);
        // 19-point stencil with the standard coefficients (b == 0 cross
        // terms included in the flop count, elided arithmetically).
        const double s0 = base[c + sx] + base[c + sy] + base[c + sz] +
                          base[c - sx] + base[c - sy] + base[c - sz];
        const double ss = (s0 * kA3 - base[c]);
        gosa += ss * ss;
        wrk2_[static_cast<std::size_t>(c)] = base[c] + kOmega * ss;
        ++cells;
      }
    }
  }
  for (int k = klo; k <= khi; ++k) {
    for (int j = jlo; j <= jhi; ++j) {
      for (int i = 2; i <= cfg_.gx - 1; ++i) {
        const auto c = idx(i, j, k);
        base[c] = wrk2_[static_cast<std::size_t>(c)];
      }
    }
  }
  // Charge the virtual compute cost of the sweep.
  sim::Engine::current()->advance(sim::from_ns(
      static_cast<double>(cells) * kFlopsPerCell / cfg_.flops_per_ns));
  return gosa;
}

void Solver::exchange_halos() {
  using caf::Section;
  using caf::Triplet;
  const int jy = rank_y();
  const int kz = rank_z();
  const Triplet all_x{1, cfg_.gx, 1};
  const Triplet int_y{2, ly_ + 1, 1};
  const Triplet int_z{2, lz_ + 1, 1};

  // ±y: matrix-oriented strided planes (contiguous x-runs, strided over z).
  if (jy > 0) {  // send my first interior y-plane to the -y neighbor's ghost
    const Section mine{all_x, Triplet{2, 2, 1}, int_z};
    p_.pack_local(pack_.data(), mine);
    const Section theirs{all_x, Triplet{ly_ + 2, ly_ + 2, 1}, int_z};
    p_.put_section(image_of(jy - 1, kz), theirs, pack_.data());
  }
  if (jy < cfg_.py - 1) {
    const Section mine{all_x, Triplet{ly_ + 1, ly_ + 1, 1}, int_z};
    p_.pack_local(pack_.data(), mine);
    const Section theirs{all_x, Triplet{1, 1, 1}, int_z};
    p_.put_section(image_of(jy + 1, kz), theirs, pack_.data());
  }
  // ±z: near-contiguous plane sections (x fully selected, y interior).
  if (kz > 0) {
    const Section mine{all_x, int_y, Triplet{2, 2, 1}};
    p_.pack_local(pack_.data(), mine);
    const Section theirs{all_x, int_y, Triplet{lz_ + 2, lz_ + 2, 1}};
    p_.put_section(image_of(jy, kz - 1), theirs, pack_.data());
  }
  if (kz < cfg_.pz - 1) {
    const Section mine{all_x, int_y, Triplet{lz_ + 1, lz_ + 1, 1}};
    p_.pack_local(pack_.data(), mine);
    const Section theirs{all_x, int_y, Triplet{1, 1, 1}};
    p_.put_section(image_of(jy, kz + 1), theirs, pack_.data());
  }
}

Result Solver::run() {
  rt_.sync_all();
  const sim::Time t0 = sim::Engine::current()->now();
  double gosa = 0.0;
  sim::Time coll = 0;
  for (int it = 0; it < cfg_.iters; ++it) {
    obs::phase("sweep");
    gosa = jacobi_sweep();
    obs::phase("halo");
    exchange_halos();
    obs::phase("residual");
    const sim::Time c0 = sim::Engine::current()->now();
    rt_.co_sum(&gosa, 1);
    coll += sim::Engine::current()->now() - c0;
    obs::phase("barrier");
    rt_.sync_all();
  }
  const sim::Time elapsed = sim::Engine::current()->now() - t0;
  Result r;
  r.gosa = gosa;
  r.elapsed = elapsed;
  r.coll_per_iter = coll / cfg_.iters;
  const double total_flops = static_cast<double>(cfg_.iters) * kFlopsPerCell *
                             (cfg_.gx - 2) * (cfg_.gy - 2) * (cfg_.gz - 2);
  r.mflops = total_flops / (static_cast<double>(elapsed) / 1e9) / 1e6;
  return r;
}

}  // namespace apps::himeno
