// upc::Runtime — a UPC-style PGAS runtime over OpenSHMEM.
//
// The paper's thesis is that OpenSHMEM can serve as THE portable
// communication layer for PGAS *models* (plural): §VI points at Cray
// implementing UPC, CAF, and SHMEM over one substrate (DMAPP) and proposes
// OpenSHMEM for that unifying role. This module demonstrates the claim for
// a second language model: the core of UPC's runtime — THREADS/MYTHREAD,
// block-cyclic shared arrays, upc_barrier, upc_forall affinity, global
// locks, and the upc_all_* collectives — mapped onto the same shmem::World
// the CAF runtime uses.
//
// Notably, UPC locks ARE single global entities, so OpenSHMEM's lock API —
// which §IV-D shows is the *wrong* shape for CAF's per-image locks — is
// exactly the right shape here.
//
// Shared-array layout ("shared [B] T A[N]"): element i lives on thread
// (i / B) % THREADS, at local block i / (B*THREADS), slot i % B.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>

#include "shmem/world.hpp"

namespace upc {

class Runtime;

/// Affinity arithmetic for a block-cyclic shared array, exposed separately
/// so it can be property-tested against a reference enumeration.
struct Layout {
  std::int64_t nelems = 0;
  std::int64_t blocksize = 1;
  int threads = 1;

  int owner(std::int64_t i) const { return static_cast<int>((i / blocksize) % threads); }
  /// Index within the owner's local slice.
  std::int64_t local_index(std::int64_t i) const {
    return (i / (blocksize * threads)) * blocksize + i % blocksize;
  }
  /// Elements resident on `thread`.
  std::int64_t local_count(int thread) const {
    std::int64_t full_cycles = nelems / (blocksize * threads);
    std::int64_t count = full_cycles * blocksize;
    const std::int64_t rem = nelems % (blocksize * threads);
    const std::int64_t start = static_cast<std::int64_t>(thread) * blocksize;
    if (rem > start) count += std::min(rem - start, blocksize);
    return count;
  }
};

/// A distributed shared array handle (same offset on every thread).
template <typename T>
class SharedArray {
 public:
  SharedArray() = default;

  const Layout& layout() const { return layout_; }

  /// Remote or local read of element i (shared pointer dereference).
  T read(std::int64_t i) const;
  /// Remote or local write.
  void write(std::int64_t i, T v);
  /// Host pointer if the caller has affinity to element i, else nullptr
  /// (upc_cast / local pointer-to-shared conversion).
  T* local_ptr(std::int64_t i);

 private:
  friend class Runtime;
  Runtime* rt_ = nullptr;
  std::uint64_t off_ = 0;  // symmetric offset of the local slice
  Layout layout_;
};

class Runtime {
 public:
  explicit Runtime(shmem::World& world) : world_(world) {}

  int mythread() const { return world_.my_pe(); }
  int threads() const { return world_.n_pes(); }
  shmem::World& world() { return world_; }

  void barrier() { world_.barrier_all(); }   // upc_barrier
  void fence() { world_.quiet(); }           // upc_fence

  /// upc_all_alloc: collective allocation of a shared [blocksize] T[nelems].
  template <typename T>
  SharedArray<T> all_alloc(std::int64_t nelems, std::int64_t blocksize) {
    if (nelems < 0 || blocksize < 1) {
      throw std::invalid_argument("upc_all_alloc: bad shape");
    }
    SharedArray<T> a;
    a.rt_ = this;
    a.layout_ = Layout{nelems, blocksize, threads()};
    // Every thread allocates the maximum slice so offsets stay symmetric.
    std::int64_t max_local = 0;
    for (int t = 0; t < threads(); ++t) {
      max_local = std::max(max_local, a.layout_.local_count(t));
    }
    void* p = world_.shmalloc(static_cast<std::size_t>(
        std::max<std::int64_t>(max_local, 1) * static_cast<std::int64_t>(sizeof(T))));
    a.off_ = world_.offset_of(p);
    return a;
  }

  /// upc_forall(i = 0; i < n; ++i; affinity &A[i]) { body(i); } — executes
  /// body(i) only on the thread with affinity to A[i].
  template <typename T>
  void forall(const SharedArray<T>& a,
              const std::function<void(std::int64_t)>& body) {
    for (std::int64_t i = 0; i < a.layout().nelems; ++i) {
      if (a.layout().owner(i) == mythread()) body(i);
    }
  }

  /// upc_global_lock_alloc: UPC locks are single global entities — the
  /// OpenSHMEM lock API fits directly (contrast §IV-D for CAF).
  std::int64_t* global_lock_alloc() {
    auto* l = static_cast<std::int64_t*>(world_.shmalloc(sizeof(std::int64_t)));
    *l = 0;
    world_.barrier_all();
    return l;
  }
  void lock(std::int64_t* l) { world_.set_lock(l); }
  void unlock(std::int64_t* l) { world_.clear_lock(l); }
  int lock_attempt(std::int64_t* l) { return world_.test_lock(l) == 0 ? 1 : 0; }

  /// upc_all_reduce (sum/min/max over a private value per thread).
  template <typename T>
  T all_reduce(T v, shmem::ReduceOp op) {
    auto* slot = static_cast<T*>(world_.shmalloc(sizeof(T)));
    *slot = v;
    world_.reduce(slot, slot, 1, op);
    const T out = *slot;
    world_.barrier_all();
    world_.shfree(slot);
    return out;
  }

  /// upc_all_broadcast of a private value from `root`.
  template <typename T>
  T all_broadcast(T v, int root) {
    auto* slot = static_cast<T*>(world_.shmalloc(sizeof(T)));
    if (mythread() == root) *slot = v;
    world_.barrier_all();
    world_.broadcast(slot, sizeof(T), root);
    const T out = *slot;
    world_.barrier_all();
    world_.shfree(slot);
    return out;
  }

 private:
  template <typename U>
  friend class SharedArray;

  shmem::World& world_;
};

template <typename T>
T SharedArray<T>::read(std::int64_t i) const {
  const Layout& l = layout_;
  const int owner = l.owner(i);
  auto* base = reinterpret_cast<T*>(
      rt_->world().domain().segment(rt_->mythread()) + off_);
  T v{};
  rt_->world().getmem(&v, base + l.local_index(i), sizeof(T), owner);
  return v;
}

template <typename T>
void SharedArray<T>::write(std::int64_t i, T v) {
  const Layout& l = layout_;
  const int owner = l.owner(i);
  auto* base = reinterpret_cast<T*>(
      rt_->world().domain().segment(rt_->mythread()) + off_);
  rt_->world().putmem(base + l.local_index(i), &v, sizeof(T), owner);
  rt_->world().quiet();
}

template <typename T>
T* SharedArray<T>::local_ptr(std::int64_t i) {
  if (layout_.owner(i) != rt_->mythread()) return nullptr;
  auto* base = reinterpret_cast<T*>(
      rt_->world().domain().segment(rt_->mythread()) + off_);
  return base + layout_.local_index(i);
}

}  // namespace upc
