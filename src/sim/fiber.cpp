#include "sim/fiber.hpp"

#include <cassert>
#include <cstdint>

#include "sim/engine.hpp"

namespace sim {

Fiber::Fiber(Engine& engine, int pe, std::function<void()> body,
             std::size_t stack_bytes)
    : engine_(engine),
      pe_(pe),
      body_(std::move(body)),
      stack_bytes_((stack_bytes + 15) & ~std::size_t{15}) {
  stack_ = std::make_unique<char[]>(stack_bytes_);
}

Fiber::~Fiber() = default;

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  self->run_body();
  // Returning from a makecontext function whose uc_link is set resumes the
  // linked context; we instead switch out explicitly so the engine can
  // observe the kFinished state first.
  self->state_ = State::kFinished;
  swapcontext(&self->ctx_, self->return_ctx_);
  // Unreachable: a finished fiber is never resumed.
  assert(false && "finished fiber resumed");
}

void Fiber::run_body() {
  try {
    body_();
  } catch (const FiberKilled&) {
    // Normal termination path for a killed PE: unwind the body's stack and
    // let the fiber finish quietly. Must precede catch(...) so workload code
    // cannot be blamed for a kill it merely unwound through.
  } catch (...) {
    pending_exception_ = std::current_exception();
  }
}

void Fiber::switch_in(ucontext_t* scheduler_ctx) {
  assert(state_ == State::kCreated || state_ == State::kRunnable);
  return_ctx_ = scheduler_ctx;
  if (state_ == State::kCreated) {
    getcontext(&ctx_);
    ctx_.uc_stack.ss_sp = stack_.get();
    ctx_.uc_stack.ss_size = stack_bytes_;
    ctx_.uc_link = scheduler_ctx;
    const auto ptr = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned>(ptr >> 32),
                static_cast<unsigned>(ptr & 0xffffffffu));
  }
  state_ = State::kRunning;
  swapcontext(scheduler_ctx, &ctx_);
  // Back on the scheduler. Propagate any exception raised in the fiber.
  if (pending_exception_) {
    auto ex = pending_exception_;
    pending_exception_ = nullptr;
    state_ = State::kFinished;
    std::rethrow_exception(ex);
  }
}

void Fiber::switch_out() {
  assert(state_ != State::kRunning || return_ctx_ != nullptr);
  swapcontext(&ctx_, return_ctx_);
}

}  // namespace sim
