#include "sim/fiber.hpp"

#include <cassert>
#include <cstdint>

#include "sim/engine.hpp"

namespace sim {

Fiber::Fiber(Engine& engine, int pe, std::function<void()> body,
             std::size_t stack_bytes)
    : engine_(engine), pe_(pe), body_(std::move(body)),
      stack_bytes_(stack_bytes) {}

Fiber::~Fiber() = default;

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  self->run_body();
  // Leave the fiber explicitly (not via uc_link) so the engine observes the
  // kFinished state first and can retire the stack before anything else.
  self->state_ = State::kFinished;
#if SIM_FIBER_UCONTEXT
  swapcontext(&self->ctx_, self->return_ctx_);
#else
  _longjmp(self->engine_.sched_jb_, 1);
#endif
  // Unreachable: a finished fiber is never resumed.
  assert(false && "finished fiber resumed");
}

void Fiber::run_body() {
  try {
    body_();
  } catch (const FiberKilled&) {
    // Normal termination path for a killed PE: unwind the body's stack and
    // let the fiber finish quietly. Must precede catch(...) so workload code
    // cannot be blamed for a kill it merely unwound through.
  } catch (...) {
    pending_exception_ = std::current_exception();
  }
}

void Fiber::switch_in() {
  assert(state_ == State::kCreated || state_ == State::kRunnable);
  const bool first = state_ == State::kCreated;
  if (first) stack_ = engine_.stack_pool_.acquire(stack_bytes_);
  state_ = State::kRunning;
  const auto ptr = reinterpret_cast<std::uintptr_t>(this);
#if SIM_FIBER_UCONTEXT
  return_ctx_ = &engine_.scheduler_ctx_;
  if (first) {
    getcontext(&ctx_);
    ctx_.uc_stack.ss_sp = stack_.base;
    ctx_.uc_stack.ss_size = stack_.bytes;
    ctx_.uc_link = return_ctx_;
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned>(ptr >> 32),
                static_cast<unsigned>(ptr & 0xffffffffu));
  }
  swapcontext(&engine_.scheduler_ctx_, &ctx_);
#else
  if (_setjmp(engine_.sched_jb_) == 0) {
    if (first) {
      // One-time ucontext bootstrap onto the fiber's stack. `boot` lives in
      // this frame only until setcontext fires; the fiber never returns
      // through it (finish and yield both _longjmp to sched_jb_).
      ucontext_t boot;
      getcontext(&boot);
      boot.uc_stack.ss_sp = stack_.base;
      boot.uc_stack.ss_size = stack_.bytes;
      boot.uc_link = nullptr;
      makecontext(&boot, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                  static_cast<unsigned>(ptr >> 32),
                  static_cast<unsigned>(ptr & 0xffffffffu));
      setcontext(&boot);
      assert(false && "setcontext returned");
    } else {
      _longjmp(jb_, 1);
    }
  }
#endif
  // Back on the scheduler. The engine inspects state_ / pending_exception_.
}

void Fiber::switch_out() {
#if SIM_FIBER_UCONTEXT
  assert(return_ctx_ != nullptr);
  swapcontext(&ctx_, return_ctx_);
#else
  if (_setjmp(jb_) == 0) _longjmp(engine_.sched_jb_, 1);
#endif
}

}  // namespace sim
