// Virtual-time definitions for the discrete-event simulation engine.
//
// All simulated durations and timestamps are integral nanoseconds so that
// event ordering is exact and runs are bit-reproducible across hosts.
#pragma once

#include <cstdint>
#include <string>

namespace sim {

/// A point in (or span of) virtual time, in nanoseconds.
using Time = std::int64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1'000;
inline constexpr Time kMillisecond = 1'000'000;
inline constexpr Time kSecond = 1'000'000'000;

/// Converts a duration in (possibly fractional) nanoseconds to Time,
/// rounding half-up. Used by bandwidth models that compute byte costs as
/// doubles.
constexpr Time from_ns(double ns) {
  return static_cast<Time>(ns + 0.5);
}

constexpr double to_us(Time t) { return static_cast<double>(t) / 1e3; }
constexpr double to_ms(Time t) { return static_cast<double>(t) / 1e6; }
constexpr double to_sec(Time t) { return static_cast<double>(t) / 1e9; }

/// Human-readable rendering ("12.345 us", "3.2 s", ...) for logs and
/// benchmark tables.
std::string format_time(Time t);

namespace literals {
constexpr Time operator""_ns(unsigned long long v) { return static_cast<Time>(v); }
constexpr Time operator""_us(unsigned long long v) { return static_cast<Time>(v) * kMicrosecond; }
constexpr Time operator""_ms(unsigned long long v) { return static_cast<Time>(v) * kMillisecond; }
constexpr Time operator""_s(unsigned long long v) { return static_cast<Time>(v) * kSecond; }
}  // namespace literals

}  // namespace sim
