#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace sim {

namespace {
thread_local Engine* g_current_engine = nullptr;
}  // namespace

Engine::Engine(std::size_t default_stack_bytes)
    : default_stack_bytes_(default_stack_bytes) {}

Engine::~Engine() = default;

Engine* Engine::current() { return g_current_engine; }

Fiber& Engine::spawn(int pe, std::function<void()> body) {
  return spawn(pe, std::move(body), default_stack_bytes_);
}

Fiber& Engine::spawn(int pe, std::function<void()> body,
                     std::size_t stack_bytes) {
  fibers_.push_back(
      std::make_unique<Fiber>(*this, pe, std::move(body), stack_bytes));
  Fiber* f = fibers_.back().get();
  f->set_clock(sim_now_);
  schedule(sim_now_, [this, f] { run_fiber(*f, f->clock()); });
  return *f;
}

void Engine::spawn_pes(int n, const std::function<void(int)>& body) {
  for (int pe = 0; pe < n; ++pe) {
    spawn(pe, [body, pe] { body(pe); });
  }
}

void Engine::schedule(Time t, std::function<void()> fn) {
  queue_.push(Event{std::max(t, sim_now_), next_seq_++, std::move(fn)});
}

Time Engine::now() const {
  assert(current_ != nullptr && "now() requires a fiber context");
  return current_->clock();
}

void Engine::advance(Time dt) {
  assert(dt >= 0);
  advance_to(now() + dt);
}

void Engine::advance_to(Time t) {
  Fiber* f = current_;
  assert(f != nullptr && "advance_to() requires a fiber context");
  if (t <= f->clock()) return;
  // Leave the fiber and re-enter once the virtual clock reaches t, so any
  // deliveries with timestamps in (now, t] land in memory first.
  f->set_clock(t);
  f->state_ = Fiber::State::kRunnable;
  schedule(t, [this, f] { run_fiber(*f, f->clock()); });
  f->switch_out();
}

void Engine::tick(Time dt) {
  assert(current_ != nullptr);
  assert(dt >= 0);
  current_->set_clock(current_->clock() + dt);
}

void Engine::block() {
  Fiber* f = current_;
  assert(f != nullptr && "block() requires a fiber context");
  f->state_ = Fiber::State::kBlocked;
  f->switch_out();
}

void Engine::resume(Fiber& f, Time t) {
  assert(f.state() == Fiber::State::kBlocked &&
         "resume() target must be blocked");
  f.set_clock(std::max(f.clock(), t));
  f.state_ = Fiber::State::kRunnable;
  schedule(f.clock(), [this, pf = &f] { run_fiber(*pf, pf->clock()); });
}

void Engine::run_fiber(Fiber& f, Time t) {
  if (f.state() == Fiber::State::kFinished) return;
  assert(f.state() == Fiber::State::kCreated ||
         f.state() == Fiber::State::kRunnable);
  f.set_clock(std::max(f.clock(), t));
  current_ = &f;
  f.switch_in(&scheduler_ctx_);
  current_ = nullptr;
}

int Engine::fibers_unfinished() const {
  int n = 0;
  for (const auto& f : fibers_) {
    if (f->state() != Fiber::State::kFinished) ++n;
  }
  return n;
}

void Engine::run() {
  assert(!running_ && "Engine::run is not reentrant");
  running_ = true;
  Engine* prev = g_current_engine;
  g_current_engine = this;
  try {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      sim_now_ = ev.t;
      ++events_processed_;
      ev.fn();
    }
  } catch (...) {
    g_current_engine = prev;
    running_ = false;
    throw;
  }
  g_current_engine = prev;
  running_ = false;
  if (fibers_unfinished() > 0) report_deadlock();
}

void Engine::report_deadlock() const {
  std::ostringstream os;
  os << "simulation deadlock: " << fibers_unfinished()
     << " fiber(s) still unfinished at t=" << format_time(sim_now_)
     << "; blocked PEs:";
  int listed = 0;
  for (const auto& f : fibers_) {
    if (f->state() != Fiber::State::kFinished) {
      if (listed++ < 16) os << ' ' << f->pe();
    }
  }
  if (listed > 16) os << " ...";
  throw DeadlockError(os.str());
}

namespace this_pe {

Time now() { return Engine::current()->now(); }

void advance(Time dt) { Engine::current()->advance(dt); }

int id() { return Engine::current()->current_fiber()->pe(); }

}  // namespace this_pe

}  // namespace sim
