#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <new>
#include <sstream>

namespace sim {

namespace {
thread_local Engine* g_current_engine = nullptr;
thread_local EngineStats g_last_stats{};
}  // namespace

Engine::Engine(std::size_t default_stack_bytes)
    : default_stack_bytes_(default_stack_bytes) {}

Engine::~Engine() {
  // Pending closure events own a live std::function; destroy those before
  // the pool reclaims the slabs. Typed events hold nothing.
  queue_.drain_dispose([](EventNode* n) {
    if (n->kind == EventNode::Kind::kClosure) n->u.fn.~function();
  });
}

Engine* Engine::current() { return g_current_engine; }

EngineStats Engine::stats() const {
  EngineStats s;
  s.events = events_processed_;
  s.switches = switches_;
  s.event_pool_hits = pool_.hits();
  s.event_pool_misses = pool_.misses();
  s.event_slab_allocs = pool_.slab_allocs();
  s.stack_bytes_peak = stack_pool_.peak_in_use_bytes();
  s.stack_bytes_mapped = stack_pool_.mapped_bytes();
  s.stack_acquires = stack_pool_.acquires();
  s.stack_reuses = stack_pool_.reuses();
  return s;
}

EngineStats last_engine_stats() {
  if (g_current_engine != nullptr) return g_current_engine->stats();
  return g_last_stats;
}

Fiber& Engine::spawn(int pe, std::function<void()> body) {
  return spawn(pe, std::move(body), default_stack_bytes_);
}

Fiber& Engine::spawn(int pe, std::function<void()> body,
                     std::size_t stack_bytes) {
  fibers_.push_back(
      std::make_unique<Fiber>(*this, pe, std::move(body), stack_bytes));
  Fiber* f = fibers_.back().get();
  f->set_clock(sim_now_);
  ++unfinished_;
  schedule_resume(*f);
  return *f;
}

void Engine::spawn_pes(int n, const std::function<void(int)>& body) {
  for (int pe = 0; pe < n; ++pe) {
    spawn(pe, [body, pe] { body(pe); });
  }
}

void Engine::schedule(Time t, std::function<void()> fn) {
  EventNode* n = pool_.acquire();
  n->t = std::max(t, sim_now_);
  n->seq = next_seq_++;
  n->kind = EventNode::Kind::kClosure;
  new (&n->u.fn) std::function<void()>(std::move(fn));
  queue_.push(n);
}

void Engine::push_raw(Time t, std::uint64_t seq, RawFn fn, void* ctx,
                      std::uint64_t a, std::uint64_t b) {
  EventNode* n = pool_.acquire();
  n->t = std::max(t, sim_now_);
  n->seq = seq;
  n->kind = EventNode::Kind::kRawCall;
  n->u.raw = EventNode::Payload::Raw{fn, ctx, a, b};
  queue_.push(n);
}

void Engine::schedule_resume(Fiber& f) {
  EventNode* n = pool_.acquire();
  n->t = std::max(f.clock(), sim_now_);
  n->seq = next_seq_++;
  n->kind = EventNode::Kind::kFiberResume;
  n->u.fiber = &f;
  queue_.push(n);
}

Time Engine::now() const {
  assert(current_ != nullptr && "now() requires a fiber context");
  return current_->clock();
}

void Engine::advance(Time dt) {
  assert(dt >= 0);
  advance_to(now() + dt);
}

void Engine::advance_to(Time t) {
  Fiber* f = current_;
  assert(f != nullptr && "advance_to() requires a fiber context");
  if (t <= f->clock()) return;
  // Leave the fiber and re-enter once the virtual clock reaches t, so any
  // deliveries with timestamps in (now, t] land in memory first.
  f->set_clock(t);
  f->state_ = Fiber::State::kRunnable;
  schedule_resume(*f);
  f->switch_out();
  if (f->kill_pending_) throw FiberKilled{};
}

void Engine::tick(Time dt) {
  assert(current_ != nullptr);
  assert(dt >= 0);
  current_->set_clock(current_->clock() + dt);
}

void Engine::block() {
  Fiber* f = current_;
  assert(f != nullptr && "block() requires a fiber context");
  f->state_ = Fiber::State::kBlocked;
  f->switch_out();
  if (f->kill_pending_) throw FiberKilled{};
}

void Engine::resume(Fiber& f, Time t) {
  // Stale wake-ups are legal: a watcher may fire for a fiber that was
  // already woken (kRunnable) or killed (kFinished) by fault injection.
  if (f.state() == Fiber::State::kFinished ||
      f.state() == Fiber::State::kRunnable) {
    return;
  }
  assert(f.state() == Fiber::State::kBlocked &&
         "resume() target must be blocked");
  f.set_clock(std::max(f.clock(), t));
  f.state_ = Fiber::State::kRunnable;
  schedule_resume(f);
}

void Engine::kill_pe(int pe) {
  assert(current_ == nullptr && "kill_pe must run on the scheduler context");
  if (pe_failed(pe)) return;
  failures_.push_back(PeFailure{pe, sim_now_});
  for (auto& f : fibers_) {
    if (f->pe() != pe) continue;
    switch (f->state()) {
      case Fiber::State::kCreated:
        // Never entered; no stack was ever acquired, nothing to unwind.
        f->state_ = Fiber::State::kFinished;
        retire_fiber(*f);
        break;
      case Fiber::State::kBlocked:
        f->kill_pending_ = true;
        resume(*f, sim_now_);
        break;
      case Fiber::State::kRunnable:
        // Already has a pending run event; it will unwind when it runs.
        f->kill_pending_ = true;
        break;
      case Fiber::State::kRunning:
      case Fiber::State::kFinished:
        break;
    }
  }
  // Without a detector the kill is also the declaration (legacy behavior:
  // hooks run immediately, the declared view tracks ground truth). With
  // deferred declaration the runtime stays oblivious until the detector
  // calls declare_pe_failure.
  if (!deferred_declaration_) declare_pe_failure(pe, sim_now_);
}

void Engine::declare_pe_failure(int pe, Time at) {
  if (pe_declared(pe)) return;
  declared_.push_back(PeFailure{pe, std::max(at, sim_now_)});
  ++membership_epoch_;
  for (const auto& hook : failure_hooks_) hook(declared_.back());
}

bool Engine::pe_declared(int pe) const {
  for (const PeFailure& f : declared_) {
    if (f.pe == pe) return true;
  }
  return false;
}

bool Engine::pe_failed(int pe) const {
  for (const PeFailure& f : failures_) {
    if (f.pe == pe) return true;
  }
  return false;
}

void Engine::run_fiber(Fiber& f, Time t) {
  if (f.state() == Fiber::State::kFinished) return;
  assert(f.state() == Fiber::State::kCreated ||
         f.state() == Fiber::State::kRunnable);
  f.set_clock(std::max(f.clock(), t));
  current_ = &f;
  ++switches_;
  f.switch_in();
  current_ = nullptr;
  if (f.state() == Fiber::State::kFinished) retire_fiber(f);
  if (f.pending_exception_) {
    auto ex = f.pending_exception_;
    f.pending_exception_ = nullptr;
    std::rethrow_exception(ex);
  }
}

void Engine::retire_fiber(Fiber& f) {
  assert(f.state() == Fiber::State::kFinished);
  --unfinished_;
  if (f.stack_.base != nullptr) {
    stack_pool_.release(f.stack_);
    f.stack_ = StackPool::Stack{};
  }
  f.body_ = nullptr;  // drop captured workload state with the stack
}

int Engine::fibers_unfinished_scan() const {
  int n = 0;
  for (const auto& f : fibers_) {
    if (f->state() != Fiber::State::kFinished) ++n;
  }
  return n;
}

void Engine::run() {
  assert(!running_ && "Engine::run is not reentrant");
  running_ = true;
  Engine* prev = g_current_engine;
  g_current_engine = this;
  try {
    EventNode* n;
    while ((n = queue_.pop()) != nullptr) {
      sim_now_ = n->t;
      ++events_processed_;
      switch (n->kind) {
        case EventNode::Kind::kFiberResume: {
          Fiber* f = n->u.fiber;
          pool_.release(n);
          run_fiber(*f, f->clock());
          break;
        }
        case EventNode::Kind::kRawCall: {
          const auto raw = n->u.raw;
          pool_.release(n);
          raw.fn(raw.ctx, raw.a, raw.b);
          break;
        }
        case EventNode::Kind::kClosure: {
          auto fn = std::move(n->u.fn);
          n->u.fn.~function();
          pool_.release(n);
          fn();
          break;
        }
      }
    }
  } catch (...) {
    g_current_engine = prev;
    running_ = false;
    g_last_stats = stats();
    throw;
  }
  g_current_engine = prev;
  running_ = false;
  g_last_stats = stats();
  if (fibers_unfinished() > 0) report_deadlock();
}

void Engine::report_deadlock() const {
  constexpr int kMaxListed = 32;
  std::ostringstream os;
  if (!failures_.empty()) {
    os << "simulation stalled after image failure: ";
  } else {
    os << "simulation deadlock: ";
  }
  os << fibers_unfinished() << " fiber(s) still unfinished at t="
     << format_time(sim_now_);
  int listed = 0;
  for (const auto& f : fibers_) {
    if (f->state() == Fiber::State::kFinished) continue;
    if (listed++ >= kMaxListed) continue;
    os << "\n  [pe " << f->pe() << "] clock=" << format_time(f->clock())
       << " blocked in " << (f->block_op() ? f->block_op() : "<untagged>");
    if (f->block_peer() >= 0) {
      os << " (peer pe " << f->block_peer();
      if (pe_failed(f->block_peer())) os << ", FAILED";
      os << ')';
    }
  }
  if (listed > kMaxListed) {
    os << "\n  ... " << (listed - kMaxListed) << " more";
  }
  if (!failures_.empty()) {
    os << "\nfailed images:";
    for (const PeFailure& f : failures_) {
      os << " pe " << f.pe << " (killed at " << format_time(f.at) << ')';
    }
  }
  if (diagnostic_hook_) {
    const std::string extra = diagnostic_hook_();
    if (!extra.empty()) os << '\n' << extra;
  }
  if (!failures_.empty()) throw FailedImageError(os.str());
  throw DeadlockError(os.str());
}

namespace this_pe {

Time now() { return Engine::current()->now(); }

void advance(Time dt) { Engine::current()->advance(dt); }

int id() { return Engine::current()->current_fiber()->pe(); }

}  // namespace this_pe

}  // namespace sim
