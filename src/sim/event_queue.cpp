#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace sim {

// Orphaned slabs from destroyed engines, kept warm for the next EventPool
// on this thread. Everything is single-threaded by design (see engine.hpp),
// so a plain thread_local vector suffices.
struct EventSlabCache {
  std::vector<std::unique_ptr<EventPool::Slab>> spare;

  static EventSlabCache& instance() {
    thread_local EventSlabCache cache;
    return cache;
  }
};

EventPool::~EventPool() {
  auto& cache = EventSlabCache::instance().spare;
  for (auto& slab : slabs_) cache.push_back(std::move(slab));
}

void EventPool::grow() {
  auto& cache = EventSlabCache::instance().spare;
  if (!cache.empty()) {
    slabs_.push_back(std::move(cache.back()));
    cache.pop_back();
  } else {
    // for_overwrite: nodes are fully written at acquire; value-init would
    // memset every slab for nothing.
    slabs_.push_back(std::make_unique_for_overwrite<Slab>());
    ++slab_allocs_;
  }
  bump_ = slabs_.back()->nodes;
  bump_left_ = kSlabNodes;
}

CalendarQueue::CalendarQueue()
    : buckets_(kInitialBuckets, nullptr), mask_(kInitialBuckets - 1) {}

void CalendarQueue::refill() {
  // Precondition: heap_ empty, size_ > 0 (so wheel and/or ladder has work).
  if (in_wheel_ == 0) {
    // Wheel is dry: jump the cursor to just before the earliest ladder
    // event instead of sweeping empty ticks. The cursor only moves forward:
    // ladder events were beyond the horizon when inserted, and the scan
    // below never passes an occupied tick.
    assert(!overflow_.empty());
    cur_tick_ = tick_of(overflow_.front()->t) - 1;
  }
  // Events whose ticks now fall inside the window migrate ladder -> wheel.
  const std::int64_t window_end =
      cur_tick_ + static_cast<std::int64_t>(buckets_.size());
  while (!overflow_.empty() && tick_of(overflow_.front()->t) <= window_end) {
    std::pop_heap(overflow_.begin(), overflow_.end(), &later);
    EventNode* n = overflow_.back();
    overflow_.pop_back();
    EventNode*& head =
        buckets_[static_cast<std::uint64_t>(tick_of(n->t)) & mask_];
    n->next = head;
    head = n;
    ++in_wheel_;
  }
  // Advance to the next occupied bucket; guaranteed within one window.
  for (;;) {
    ++cur_tick_;
    EventNode*& head = buckets_[static_cast<std::uint64_t>(cur_tick_) & mask_];
    if (head != nullptr) {
      for (EventNode* n = head; n != nullptr; n = n->next) {
        heap_.push_back(n);
        --in_wheel_;
      }
      head = nullptr;
      std::make_heap(heap_.begin(), heap_.end(), &later);
      return;
    }
  }
}

void CalendarQueue::rebuild() {
  std::vector<EventNode*> all;
  all.reserve(size_);
  drain_dispose([&all](EventNode* n) { all.push_back(n); });

  Time min_t = all.front()->t;
  Time max_t = min_t;
  for (const EventNode* n : all) {
    min_t = std::min(min_t, n->t);
    max_t = std::max(max_t, n->t);
  }
  // Retune the bucket width to ~4x the mean inter-event gap — a handful of
  // events per tick amortizes the per-tick refill work without making the
  // drain heap deep — and grow the wheel to cover the whole active span,
  // so the steady-state ladder holds only genuinely far-future stragglers.
  const std::uint64_t span = static_cast<std::uint64_t>(max_t - min_t);
  const std::uint64_t gap = span / all.size();
  lw_ = std::min(40, static_cast<int>(std::bit_width(gap | 1)) + 1);
  const std::size_t span_ticks = static_cast<std::size_t>(span >> lw_);
  const std::size_t want = std::min(
      kMaxBuckets,
      std::bit_ceil(std::max({all.size(), span_ticks, kInitialBuckets})));
  buckets_.assign(want, nullptr);
  mask_ = want - 1;
  cur_tick_ = tick_of(min_t) - 1;

  size_ = all.size();
  for (EventNode* n : all) insert(n);
}

}  // namespace sim
