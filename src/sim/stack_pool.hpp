// Pooled, lazily-handed-out fiber stacks.
//
// At 16k simulated PEs, eagerly allocating (and zeroing) one stack per
// fiber at spawn time dominates both memory and startup: most PEs spend
// the run parked in a barrier and many never need deep frames at all. The
// engine instead acquires a stack from this pool on a fiber's *first*
// switch-in and returns it when the fiber finishes or is killed.
//
// Stacks are mmap'd (page-granular, never zeroed twice) and recycled
// through size-keyed free lists. A released stack is madvise(MADV_DONTNEED)d
// so a parked pool holds address space, not resident pages. The pool keeps
// peak-in-use accounting so `engine.stack_bytes_peak` can be exported as an
// observability counter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace sim {

class StackPool {
 public:
  struct Stack {
    std::byte* base = nullptr;
    std::size_t bytes = 0;  ///< page-rounded usable size
  };

  StackPool();
  ~StackPool();

  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  /// Hands out a stack of at least `bytes` (rounded up to whole pages),
  /// reusing a pooled one of the same rounded size when available.
  Stack acquire(std::size_t bytes);

  /// Returns a stack to the pool and drops its resident pages.
  void release(const Stack& s);

  std::uint64_t mapped_bytes() const { return mapped_bytes_; }
  std::uint64_t in_use_bytes() const { return in_use_bytes_; }
  std::uint64_t peak_in_use_bytes() const { return peak_in_use_bytes_; }
  std::uint64_t acquires() const { return acquires_; }
  std::uint64_t reuses() const { return reuses_; }

 private:
  std::size_t page_;
  // Free stacks keyed by rounded size. Fibers in one run overwhelmingly
  // share one or two stack sizes, so the map stays tiny.
  std::unordered_map<std::size_t, std::vector<std::byte*>> free_;
  std::vector<Stack> mapped_;  // every mapping ever made, for teardown
  std::uint64_t mapped_bytes_ = 0;
  std::uint64_t in_use_bytes_ = 0;
  std::uint64_t peak_in_use_bytes_ = 0;
  std::uint64_t acquires_ = 0;
  std::uint64_t reuses_ = 0;
};

}  // namespace sim
