// Deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock, a time-ordered event queue, and a set of
// fibers (one per simulated PE / CAF image). Communication layers schedule
// delivery events; fibers advance their own clocks through Engine::advance*
// and block/resume around communication completions. Ties in the event queue
// are broken by insertion sequence, so a given program + seed always executes
// identically.
//
// The hot path is allocation-free: events are typed nodes recycled through a
// slab pool and ordered by a calendar queue (see sim/event_queue.hpp), and
// fiber stacks come from a lazy mmap pool (see sim/stack_pool.hpp). Layers
// with per-message delivery streams schedule through schedule_raw /
// reserve_seq; the closure-taking schedule() remains as the generic slow
// path.
//
// Threading model: everything runs on the calling OS thread. Exactly one
// engine can be running on a thread at a time; Engine::current() returns it
// for code (like the OpenSHMEM C-style shim) that cannot carry a handle.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/fiber.hpp"
#include "sim/stack_pool.hpp"
#include "sim/time.hpp"

namespace sim {

/// Thrown by Engine::run when blocked fibers remain but no events are
/// pending — i.e. the simulated program deadlocked.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown instead of DeadlockError when the stall is attributable to fault
/// injection: at least one PE was killed (Engine::kill_pe) and survivors are
/// still blocked at drain time. Derives from DeadlockError so existing
/// catch sites keep working while fault-aware callers can distinguish the
/// two.
class FailedImageError : public DeadlockError {
 public:
  explicit FailedImageError(const std::string& what) : DeadlockError(what) {}
};

/// Record of one injected PE death.
struct PeFailure {
  int pe;
  Time at;  ///< virtual time at which the PE was killed
};

/// Host-side health counters for one engine, exported through the obs
/// registry as engine.* counters (see obs::sync_engine_counters).
struct EngineStats {
  std::uint64_t events = 0;            ///< events dispatched by run()
  std::uint64_t switches = 0;          ///< fiber context switches
  std::uint64_t event_pool_hits = 0;   ///< events served from the free list
  std::uint64_t event_pool_misses = 0; ///< events served from a fresh slab
  std::uint64_t event_slab_allocs = 0; ///< heap allocations for event slabs
  std::uint64_t stack_bytes_peak = 0;  ///< peak concurrently-live stack bytes
  std::uint64_t stack_bytes_mapped = 0;
  std::uint64_t stack_acquires = 0;
  std::uint64_t stack_reuses = 0;
};

class Engine {
 public:
  /// `default_stack_bytes` sizes fiber stacks created by spawn(); simulated
  /// programs keep bulky data on the heap, so the default is modest.
  explicit Engine(std::size_t default_stack_bytes = 128 * 1024);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // ---- setup (scheduler context) ----

  /// Creates a fiber for PE `pe` running `body`, resumable at time 0.
  Fiber& spawn(int pe, std::function<void()> body);
  Fiber& spawn(int pe, std::function<void()> body, std::size_t stack_bytes);

  /// Convenience: spawn `n` PEs all running `body(pe)`.
  void spawn_pes(int n, const std::function<void(int)>& body);

  /// Runs until the event queue drains. Throws DeadlockError if unfinished
  /// fibers remain afterwards.
  void run();

  // ---- event scheduling (any context) ----

  /// Schedules `fn` to run on the scheduler context at absolute time `t`
  /// (clamped to the current virtual time if in the past). Generic slow
  /// path: the closure lives in a pooled event node but std::function may
  /// allocate for large captures. Hot layers use schedule_raw.
  void schedule(Time t, std::function<void()> fn);

  /// Allocation-free scheduling: `fn(ctx, a, b)` runs on the scheduler
  /// context at time `t` (clamped as schedule()).
  void schedule_raw(Time t, RawFn fn, void* ctx, std::uint64_t a = 0,
                    std::uint64_t b = 0) {
    push_raw(t, next_seq_++, fn, ctx, a, b);
  }

  /// Claims the next event sequence number without scheduling anything.
  /// Delivery streams that batch several logical messages behind one live
  /// event node reserve a seq per message at the original schedule site and
  /// replay it via schedule_raw_reserved, keeping the global (time, seq)
  /// pop order byte-identical to one-event-per-message scheduling.
  std::uint64_t reserve_seq() { return next_seq_++; }

  /// Schedules with a sequence number previously taken from reserve_seq().
  void schedule_raw_reserved(Time t, std::uint64_t seq, RawFn fn, void* ctx,
                             std::uint64_t a = 0, std::uint64_t b = 0) {
    push_raw(t, seq, fn, ctx, a, b);
  }

  /// Absolute virtual time of the event currently being processed.
  Time sim_now() const { return sim_now_; }

  // ---- fiber-side operations ----

  /// The fiber currently executing, or nullptr on the scheduler context.
  Fiber* current_fiber() const { return current_; }

  /// Current fiber's local clock. Must be called from a fiber.
  Time now() const;

  /// Advances the current fiber's clock by `dt`, yielding to the scheduler
  /// so that deliveries with earlier timestamps are processed first.
  void advance(Time dt);

  /// Advances the current fiber's clock to absolute time `t` (no-op if
  /// already past), yielding to the scheduler.
  void advance_to(Time t);

  /// Advances the current fiber's clock without yielding. Only safe for
  /// costs that cannot interleave with deliveries the fiber later observes;
  /// prefer advance().
  void tick(Time dt);

  /// Blocks the current fiber until some other event calls resume().
  void block();

  /// Makes `f` runnable again at absolute time `t` (>= its own clock).
  /// A no-op for fibers that are already runnable or finished (e.g. stale
  /// watcher wake-ups racing a kill); must not target a running fiber.
  void resume(Fiber& f, Time t);

  // ---- fault injection (scheduler context) ----

  /// Kills every fiber of PE `pe` at the current virtual time: blocked and
  /// runnable fibers unwind via FiberKilled at their next scheduler
  /// interaction, never-started fibers finish immediately. Records the
  /// failure and invokes the registered failure hooks. Idempotent.
  void kill_pe(int pe);

  /// True once kill_pe(pe) has run.
  bool pe_failed(int pe) const;

  int failed_count() const { return static_cast<int>(failures_.size()); }
  const std::vector<PeFailure>& failures() const { return failures_; }

  // ---- declared (in-band) membership view ----
  //
  // kill_pe records ground truth — what the fault injector did. The
  // *declared* view is what the simulated software stack is allowed to act
  // on: a PE enters it only when a failure detector (or transport-level
  // retransmit exhaustion) declares it, via declare_pe_failure(). Without a
  // detector armed, kill_pe declares immediately, so the two views coincide
  // and legacy direct-kill callers see no change.

  /// Declares PE `pe` failed as observed in-band: records it, bumps the
  /// membership epoch, and runs the registered failure hooks (which kill_pe
  /// no longer runs directly when declaration is deferred). Idempotent.
  /// Callable from fiber or scheduler context; `at` stamps the declaration
  /// (clamped up to the current virtual time if earlier).
  void declare_pe_failure(int pe, Time at);

  /// True once declare_pe_failure(pe) has run. This — not pe_failed() — is
  /// what image_status / failed_images / team formation consume.
  bool pe_declared(int pe) const;

  int declared_count() const { return static_cast<int>(declared_.size()); }
  const std::vector<PeFailure>& declared_failures() const { return declared_; }

  /// Monotone counter bumped on every declaration; collective layers cache
  /// per-epoch topology (node maps, leader trees) keyed on it.
  std::uint64_t membership_epoch() const { return membership_epoch_; }

  /// Defers failure-hook execution from kill_pe to declare_pe_failure. Set
  /// by the failure detector when it arms; kill_pe then only unwinds the
  /// victim's fibers and the runtime learns of the death when the detector
  /// declares it.
  void set_deferred_failure_declaration(bool on) {
    deferred_declaration_ = on;
  }
  bool deferred_failure_declaration() const { return deferred_declaration_; }

  /// Diagnostic hook appended to deadlock/stall reports (the failure
  /// detector registers its suspicion-state snapshot here).
  void set_diagnostic_hook(std::function<std::string()> hook) {
    diagnostic_hook_ = std::move(hook);
  }

  /// Suspicion oracle: the failure detector registers its alive→suspect
  /// state here so runtimes can steer *advisory* decisions (e.g. replica
  /// read fallback) by suspicion before a declaration commits. Suspicion is
  /// never membership — only declare_pe_failure moves the declared view.
  void set_suspicion_query(std::function<bool(int)> query) {
    suspicion_query_ = std::move(query);
  }

  /// True while the armed detector holds `pe` in the suspect state (always
  /// false without a detector). Declared PEs report false — they are past
  /// suspicion, and pe_declared() is the authoritative signal.
  bool pe_suspected(int pe) const {
    return suspicion_query_ && suspicion_query_(pe);
  }

  /// Registers a hook invoked (on the scheduler context) after each PE
  /// kill; runtimes use this to poke failure sentinels into sync state.
  void on_pe_failure(std::function<void(const PeFailure&)> hook) {
    failure_hooks_.push_back(std::move(hook));
  }

  /// Declares that PE/node kills are scheduled for this run (set by
  /// FaultInjector::arm before launch). Runtimes consult kills_armed() to
  /// enable their failure-recovery protocols; without armed kills they keep
  /// the original fast paths, so fault-free runs stay bit-identical.
  void arm_kills() { kills_armed_ = true; }
  bool kills_armed() const { return kills_armed_; }

  // ---- introspection ----

  std::size_t events_processed() const { return events_processed_; }

  /// Live count of not-yet-finished fibers. O(1): maintained at spawn and
  /// retirement (run() consults it for every drain, and deadlock checks
  /// used to pay an O(n) scan here).
  int fibers_unfinished() const { return unfinished_; }

  /// The O(n) recount of fibers_unfinished(), kept as a cross-check for
  /// tests and assertions.
  int fibers_unfinished_scan() const;

  /// Host-side health counters (event pool, switches, stack pool).
  EngineStats stats() const;

  /// Engine bound to this thread while run() is active (else nullptr).
  static Engine* current();

 private:
  friend class Fiber;

  void schedule_resume(Fiber& f);
  void push_raw(Time t, std::uint64_t seq, RawFn fn, void* ctx,
                std::uint64_t a, std::uint64_t b);
  void run_fiber(Fiber& f, Time t);
  /// Accounting when a fiber reaches kFinished: releases its pooled stack,
  /// drops the captured body, and decrements the live counter.
  void retire_fiber(Fiber& f);
  [[noreturn]] void report_deadlock() const;

  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::vector<PeFailure> failures_;
  std::vector<PeFailure> declared_;
  std::uint64_t membership_epoch_ = 0;
  bool deferred_declaration_ = false;
  std::function<std::string()> diagnostic_hook_;
  std::function<bool(int)> suspicion_query_;
  std::vector<std::function<void(const PeFailure&)>> failure_hooks_;
  EventPool pool_;
  CalendarQueue queue_;
  StackPool stack_pool_;
  std::uint64_t next_seq_ = 0;
  Time sim_now_ = 0;
  std::size_t events_processed_ = 0;
  std::uint64_t switches_ = 0;
  int unfinished_ = 0;
  bool kills_armed_ = false;
  std::size_t default_stack_bytes_;

  Fiber* current_ = nullptr;
#if SIM_FIBER_UCONTEXT
  ucontext_t scheduler_ctx_{};
#else
  jmp_buf sched_jb_{};
#endif
  bool running_ = false;
};

/// Stats of the engine currently running on this thread, or (between runs)
/// a snapshot taken when the last run() on this thread returned. Lets the
/// obs export layer report engine health without holding an Engine handle.
EngineStats last_engine_stats();

/// Convenience wrappers used throughout the communication layers; they all
/// operate on Engine::current() and the currently running fiber.
namespace this_pe {
Time now();
void advance(Time dt);
int id();
}  // namespace this_pe

}  // namespace sim
