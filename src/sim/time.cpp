#include "sim/time.hpp"

#include <cstdio>

namespace sim {

std::string format_time(Time t) {
  char buf[64];
  if (t < kMicrosecond) {
    std::snprintf(buf, sizeof buf, "%lld ns", static_cast<long long>(t));
  } else if (t < kMillisecond) {
    std::snprintf(buf, sizeof buf, "%.3f us", to_us(t));
  } else if (t < kSecond) {
    std::snprintf(buf, sizeof buf, "%.3f ms", to_ms(t));
  } else {
    std::snprintf(buf, sizeof buf, "%.6f s", to_sec(t));
  }
  return buf;
}

}  // namespace sim
