// Cooperative fibers (user-level execution contexts) for simulated PEs.
//
// Each simulated processing element / CAF image runs as one fiber. The
// engine's event loop switches fibers in virtual-time order; fibers yield
// back to the loop whenever they advance their clock or block on a
// communication event. All fibers run on the host's single OS thread, so no
// locking is required anywhere in the simulation.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>

#include "sim/time.hpp"

namespace sim {

class Engine;

class Fiber {
 public:
  enum class State {
    kCreated,   // never run
    kRunnable,  // has a pending resume event
    kRunning,   // currently executing
    kBlocked,   // waiting for an explicit resume
    kFinished,  // body returned
  };

  /// Creates a fiber that will execute `body` when first resumed.
  /// `stack_bytes` is rounded up to a multiple of 16.
  Fiber(Engine& engine, int pe, std::function<void()> body,
        std::size_t stack_bytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  int pe() const { return pe_; }
  State state() const { return state_; }
  Time clock() const { return clock_; }
  void set_clock(Time t) { clock_ = t; }

 private:
  friend class Engine;

  // Transfers control from the scheduler into this fiber. Must only be
  // called by Engine on the scheduler context.
  void switch_in(ucontext_t* scheduler_ctx);
  // Transfers control from this fiber back to the scheduler.
  void switch_out();

  static void trampoline(unsigned hi, unsigned lo);
  void run_body();

  Engine& engine_;
  int pe_;
  std::function<void()> body_;
  State state_ = State::kCreated;
  Time clock_ = 0;

  std::unique_ptr<char[]> stack_;
  std::size_t stack_bytes_;
  ucontext_t ctx_{};
  ucontext_t* return_ctx_ = nullptr;  // where to go on yield/finish

  // If an exception escapes the fiber body it is stashed here and rethrown
  // by the engine on the scheduler context.
  std::exception_ptr pending_exception_;
};

}  // namespace sim
