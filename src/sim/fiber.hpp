// Cooperative fibers (user-level execution contexts) for simulated PEs.
//
// Each simulated processing element / CAF image runs as one fiber. The
// engine's event loop switches fibers in virtual-time order; fibers yield
// back to the loop whenever they advance their clock or block on a
// communication event. All fibers run on the host's single OS thread, so no
// locking is required anywhere in the simulation.
//
// Two implementation choices keep 16k-fiber runs fast:
//
//   * Stacks are pooled and lazy: a fiber owns no stack until its first
//     switch-in (Engine hands one out of its StackPool) and gives it back
//     the moment it finishes or is killed. Spawning 16k PEs costs no stack
//     memory for PEs that idle in a barrier.
//   * Steady-state switches use `_setjmp`/`_longjmp`, which stay entirely
//     in user space; `swapcontext` makes a sigprocmask syscall per switch
//     (two syscalls per simulated event in fiber-heavy phases). ucontext is
//     still used once per fiber to bootstrap onto its stack. Sanitizer
//     builds force the pure-ucontext path (SIM_FIBER_UCONTEXT) because ASan
//     tracks fiber stacks through the swapcontext interceptor.
#pragma once

#include <setjmp.h>
#include <ucontext.h>

#include <cstddef>
#include <exception>
#include <functional>

#include "sim/stack_pool.hpp"
#include "sim/time.hpp"

#ifndef __has_feature
#define __has_feature(x) 0
#endif
#ifndef SIM_FIBER_UCONTEXT
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SIM_FIBER_UCONTEXT 1
#else
#define SIM_FIBER_UCONTEXT 0
#endif
#endif

namespace sim {

class Engine;

/// Thrown inside a fiber when its PE is killed by fault injection
/// (Engine::kill_pe). Deliberately NOT derived from std::exception: user
/// workload code that catches (std::exception&) or specific error types must
/// not be able to swallow a kill; only the fiber trampoline catches it.
struct FiberKilled {};

class Fiber {
 public:
  enum class State {
    kCreated,   // never run
    kRunnable,  // has a pending resume event
    kRunning,   // currently executing
    kBlocked,   // waiting for an explicit resume
    kFinished,  // body returned
  };

  /// Creates a fiber that will execute `body` when first resumed. The stack
  /// is not allocated here: it is acquired from the engine's pool at first
  /// switch-in and recycled when the fiber finishes.
  Fiber(Engine& engine, int pe, std::function<void()> body,
        std::size_t stack_bytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  int pe() const { return pe_; }
  State state() const { return state_; }
  Time clock() const { return clock_; }
  void set_clock(Time t) { clock_ = t; }

  /// Tags the operation this fiber is about to block on, so deadlock and
  /// failed-image diagnostics can say *what* each stuck fiber was doing.
  /// `op` must point at a string literal (stored, not copied); `peer` is the
  /// remote PE involved, or -1 when not applicable.
  void set_block_op(const char* op, int peer = -1) {
    block_op_ = op;
    block_peer_ = peer;
  }
  const char* block_op() const { return block_op_; }
  int block_peer() const { return block_peer_; }

  /// True when Engine::kill_pe has marked this fiber for death; the kill
  /// takes effect (FiberKilled is thrown) at its next scheduler interaction.
  bool kill_pending() const { return kill_pending_; }

  /// True while the fiber holds a pooled stack (first switch-in has
  /// happened and the fiber has not finished).
  bool has_stack() const { return stack_.base != nullptr; }

 private:
  friend class Engine;

  // Transfers control from the scheduler into this fiber; acquires the
  // stack on first entry. Must only be called by Engine on the scheduler
  // context. Any exception the body raised is stashed in
  // pending_exception_ for the engine to rethrow after accounting.
  void switch_in();
  // Transfers control from this fiber back to the scheduler.
  void switch_out();

  static void trampoline(unsigned hi, unsigned lo);
  void run_body();

  Engine& engine_;
  int pe_;
  std::function<void()> body_;
  State state_ = State::kCreated;
  Time clock_ = 0;
  bool kill_pending_ = false;
  const char* block_op_ = nullptr;
  int block_peer_ = -1;

  std::size_t stack_bytes_;   // requested; page-rounded by the pool
  StackPool::Stack stack_{};  // empty until first switch-in

#if SIM_FIBER_UCONTEXT
  ucontext_t ctx_{};
  ucontext_t* return_ctx_ = nullptr;  // where to go on yield/finish
#else
  jmp_buf jb_{};  // resume point inside the fiber; engine holds the
                  // scheduler-side jmp_buf
#endif

  // If an exception escapes the fiber body it is stashed here and rethrown
  // by the engine on the scheduler context.
  std::exception_ptr pending_exception_;
};

}  // namespace sim
