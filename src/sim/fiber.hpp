// Cooperative fibers (user-level execution contexts) for simulated PEs.
//
// Each simulated processing element / CAF image runs as one fiber. The
// engine's event loop switches fibers in virtual-time order; fibers yield
// back to the loop whenever they advance their clock or block on a
// communication event. All fibers run on the host's single OS thread, so no
// locking is required anywhere in the simulation.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>

#include "sim/time.hpp"

namespace sim {

class Engine;

/// Thrown inside a fiber when its PE is killed by fault injection
/// (Engine::kill_pe). Deliberately NOT derived from std::exception: user
/// workload code that catches (std::exception&) or specific error types must
/// not be able to swallow a kill; only the fiber trampoline catches it.
struct FiberKilled {};

class Fiber {
 public:
  enum class State {
    kCreated,   // never run
    kRunnable,  // has a pending resume event
    kRunning,   // currently executing
    kBlocked,   // waiting for an explicit resume
    kFinished,  // body returned
  };

  /// Creates a fiber that will execute `body` when first resumed.
  /// `stack_bytes` is rounded up to a multiple of 16.
  Fiber(Engine& engine, int pe, std::function<void()> body,
        std::size_t stack_bytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  int pe() const { return pe_; }
  State state() const { return state_; }
  Time clock() const { return clock_; }
  void set_clock(Time t) { clock_ = t; }

  /// Tags the operation this fiber is about to block on, so deadlock and
  /// failed-image diagnostics can say *what* each stuck fiber was doing.
  /// `op` must point at a string literal (stored, not copied); `peer` is the
  /// remote PE involved, or -1 when not applicable.
  void set_block_op(const char* op, int peer = -1) {
    block_op_ = op;
    block_peer_ = peer;
  }
  const char* block_op() const { return block_op_; }
  int block_peer() const { return block_peer_; }

  /// True when Engine::kill_pe has marked this fiber for death; the kill
  /// takes effect (FiberKilled is thrown) at its next scheduler interaction.
  bool kill_pending() const { return kill_pending_; }

 private:
  friend class Engine;

  // Transfers control from the scheduler into this fiber. Must only be
  // called by Engine on the scheduler context.
  void switch_in(ucontext_t* scheduler_ctx);
  // Transfers control from this fiber back to the scheduler.
  void switch_out();

  static void trampoline(unsigned hi, unsigned lo);
  void run_body();

  Engine& engine_;
  int pe_;
  std::function<void()> body_;
  State state_ = State::kCreated;
  Time clock_ = 0;
  bool kill_pending_ = false;
  const char* block_op_ = nullptr;
  int block_peer_ = -1;

  std::unique_ptr<char[]> stack_;
  std::size_t stack_bytes_;
  ucontext_t ctx_{};
  ucontext_t* return_ctx_ = nullptr;  // where to go on yield/finish

  // If an exception escapes the fiber body it is stashed here and rethrown
  // by the engine on the scheduler context.
  std::exception_ptr pending_exception_;
};

}  // namespace sim
