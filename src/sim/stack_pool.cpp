#include "sim/stack_pool.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <new>

#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if defined(__SANITIZE_ADDRESS__) || __has_feature(address_sanitizer)
#include <sanitizer/asan_interface.h>
#define SIM_STACK_ASAN 1
#else
#define SIM_STACK_ASAN 0
#endif

namespace sim {

StackPool::StackPool()
    : page_(static_cast<std::size_t>(sysconf(_SC_PAGESIZE))) {}

StackPool::~StackPool() {
  for (const Stack& s : mapped_) munmap(s.base, s.bytes);
}

StackPool::Stack StackPool::acquire(std::size_t bytes) {
  const std::size_t rounded = ((bytes > 0 ? bytes : 1) + page_ - 1) & ~(page_ - 1);
  ++acquires_;
  in_use_bytes_ += rounded;
  if (in_use_bytes_ > peak_in_use_bytes_) peak_in_use_bytes_ = in_use_bytes_;

  auto it = free_.find(rounded);
  if (it != free_.end() && !it->second.empty()) {
    std::byte* base = it->second.back();
    it->second.pop_back();
    ++reuses_;
    return Stack{base, rounded};
  }

  void* p = mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) throw std::bad_alloc();
  Stack s{static_cast<std::byte*>(p), rounded};
  mapped_.push_back(s);
  mapped_bytes_ += rounded;
  return s;
}

void StackPool::release(const Stack& s) {
  assert(s.base != nullptr && (s.bytes & (page_ - 1)) == 0);
  in_use_bytes_ -= s.bytes;
#if SIM_STACK_ASAN
  // The finished fiber unwound normally, but clear any leftover redzone
  // poison before the frame region is handed to an unrelated fiber.
  __asan_unpoison_memory_region(s.base, s.bytes);
#endif
  madvise(s.base, s.bytes, MADV_DONTNEED);
  free_[s.bytes].push_back(s.base);
}

}  // namespace sim
