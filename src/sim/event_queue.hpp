// Zero-allocation event core for the DES engine.
//
// The engine's hot loop used to pop `std::function` closures out of a
// `std::priority_queue` — one heap allocation (often two) per scheduled
// event, and O(log n) comparator work against the full queue for every
// push/pop. At 16k simulated PEs that is the dominant host cost. This file
// replaces it with:
//
//   * EventNode — an intrusive, typed event record. The dominant event
//     kinds (fiber resume, raw callback used by fabric delivery and the
//     failure detector) are tagged PODs dispatched by switch; the generic
//     `schedule(t, fn)` closure survives as the slow-path kind with a
//     manually managed `std::function` in the payload union.
//   * EventPool — slab allocator with a free list. Steady-state
//     scheduling recycles nodes and never touches the heap; the
//     hit/miss/slab counters let tests assert exactly that.
//   * CalendarQueue — a calendar/ladder queue: a power-of-two wheel of
//     buckets covering the near future (bucket = time >> lw_), a small
//     min-heap for the bucket currently being drained, and a sorted
//     overflow ladder (binary heap) for events beyond the wheel horizon.
//     Push and pop are O(1) amortized when events are roughly uniform in
//     time, and never worse than O(log n).
//
// Determinism: pop order is *exactly* ascending (t, seq) — identical to
// the old priority queue — regardless of how events are distributed over
// wheel/heap/ladder internally. Same program + same seed still executes
// identically, byte for byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/time.hpp"

namespace sim {

class Fiber;

/// Raw event callback: no captures, no allocation. `ctx` plus two integer
/// slots cover every hot scheduling site (fabric delivery streams, detector
/// sweeps/declares) without a closure.
using RawFn = void (*)(void* ctx, std::uint64_t a, std::uint64_t b);

struct EventNode {
  enum class Kind : std::uint8_t {
    kFiberResume,  ///< resume u.fiber at its own clock
    kRawCall,      ///< u.raw.fn(ctx, a, b)
    kClosure,      ///< u.fn() — generic slow path
  };

  Time t;
  std::uint64_t seq;
  union Payload {
    Fiber* fiber;
    struct Raw {
      RawFn fn;
      void* ctx;
      std::uint64_t a;
      std::uint64_t b;
    } raw;
    std::function<void()> fn;  // constructed/destroyed manually (kClosure)
    EventNode* next_free;      // free-list link while the node is pooled
    Payload() {}   // NOLINT: members are managed by the owner
    ~Payload() {}  // NOLINT
  } u;
  EventNode* next;  ///< intrusive bucket-chain link while queued in the wheel
  Kind kind;
};

/// Slab allocator for EventNodes. acquire() pops the free list (a "hit",
/// zero heap traffic); when the list is dry it bump-allocates out of the
/// current slab, touching the heap only once per kSlabNodes events. The
/// payload union is returned raw: the caller sets `kind` and constructs the
/// matching member, and destroys it (kClosure only) before release().
class EventPool {
 public:
  static constexpr std::size_t kSlabNodes = 512;

  EventPool() = default;
  /// Parks this pool's slabs in a thread-local cache for the next engine on
  /// this thread (benchmarks and tests construct engines in sequence; the
  /// cache saves re-faulting the slab pages every time).
  ~EventPool();

  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  EventNode* acquire() {
    if (free_ != nullptr) {
      EventNode* n = free_;
      free_ = n->u.next_free;
      ++hits_;
      return n;
    }
    if (bump_left_ == 0) grow();
    ++misses_;
    --bump_left_;
    return bump_++;
  }

  void release(EventNode* n) {
    n->u.next_free = free_;
    free_ = n;
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t slab_allocs() const { return slab_allocs_; }

 private:
  friend struct EventSlabCache;
  struct Slab {
    EventNode nodes[kSlabNodes];
  };

  void grow();  // next slab: thread-local cache first, heap second

  std::vector<std::unique_ptr<Slab>> slabs_;
  EventNode* free_ = nullptr;
  EventNode* bump_ = nullptr;
  std::size_t bump_left_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t slab_allocs_ = 0;  ///< slabs that actually hit the heap
};

/// Calendar queue over EventNode*. See file comment for the structure; the
/// only contract is pop() returns nodes in ascending (t, seq) order.
class CalendarQueue {
 public:
  CalendarQueue();

  void push(EventNode* n);
  /// Smallest (t, seq) node, or nullptr when empty.
  EventNode* pop();

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Visits every queued node (arbitrary order) and empties the queue.
  /// Teardown-only: lets the engine destroy kClosure payloads.
  template <typename Fn>
  void drain_dispose(Fn&& fn) {
    for (EventNode* n : heap_) fn(n);
    for (EventNode* n : overflow_) fn(n);
    for (auto& b : buckets_) {
      for (EventNode* n = b; n != nullptr;) {
        EventNode* next = n->next;
        fn(n);
        n = next;
      }
      b = nullptr;
    }
    heap_.clear();
    overflow_.clear();
    in_wheel_ = 0;
    size_ = 0;
  }

 private:
  static constexpr std::size_t kInitialBuckets = 256;
  static constexpr std::size_t kMaxBuckets = 1u << 20;

  /// True when a should pop after b — min-heap comparator over (t, seq).
  static bool later(const EventNode* a, const EventNode* b) {
    if (a->t != b->t) return a->t > b->t;
    return a->seq > b->seq;
  }

  std::int64_t tick_of(Time t) const { return static_cast<std::int64_t>(t) >> lw_; }

  void insert(EventNode* n);  // push minus the resize triggers
  void refill();              // advance the cursor to the next occupied tick
  void rebuild();             // regrow the wheel / retune the bucket width

  bool wants_rebuild() const {
    // Grow when occupancy outstrips the wheel, or when the ladder holds
    // more than a wheel's worth of "far" events (the active span outgrew
    // the window and pops would churn the ladder heap).
    return buckets_.size() < kMaxBuckets &&
           (size_ > buckets_.size() * 2 || overflow_.size() > buckets_.size());
  }

  int lw_ = 6;  ///< log2 bucket width in ns; retuned by rebuild()
  /// The wheel: one intrusive LIFO chain of nodes per bucket (linked via
  /// EventNode::next). Chains are unordered; the drain heap restores the
  /// (t, seq) total order, so pop order never depends on chain layout.
  std::vector<EventNode*> buckets_;
  std::size_t mask_;
  /// Tick whose bucket is currently drained through heap_. Events at ticks
  /// <= cur_tick_ go straight to heap_; (cur_tick_, cur_tick_ + B] to the
  /// wheel; later ones to the overflow ladder.
  std::int64_t cur_tick_ = -1;
  std::vector<EventNode*> heap_;      ///< min-heap, current bucket + stragglers
  std::vector<EventNode*> overflow_;  ///< min-heap ladder beyond the horizon
  std::size_t in_wheel_ = 0;
  std::size_t size_ = 0;
};

// ---- hot-path definitions (kept in the header so the engine's scheduling
// ---- sites inline them) ----

inline void CalendarQueue::insert(EventNode* n) {
  const std::int64_t tk = tick_of(n->t);
  if (tk - cur_tick_ <= static_cast<std::int64_t>(buckets_.size())) {
    if (tk <= cur_tick_) {
      // At or behind the drain cursor (same-time follow-up events the
      // engine clamped to sim_now): merge into the current min-heap.
      heap_.push_back(n);
      std::push_heap(heap_.begin(), heap_.end(), &later);
    } else {
      EventNode*& head = buckets_[static_cast<std::uint64_t>(tk) & mask_];
      n->next = head;
      head = n;
      ++in_wheel_;
    }
  } else {
    overflow_.push_back(n);
    std::push_heap(overflow_.begin(), overflow_.end(), &later);
  }
}

inline void CalendarQueue::push(EventNode* n) {
  ++size_;
  insert(n);
  if (wants_rebuild()) rebuild();
}

inline EventNode* CalendarQueue::pop() {
  if (heap_.empty()) {
    if (size_ == 0) return nullptr;
    refill();
  }
  --size_;
  if (heap_.size() == 1) {
    EventNode* n = heap_.front();
    heap_.clear();
    return n;
  }
  std::pop_heap(heap_.begin(), heap_.end(), &later);
  EventNode* n = heap_.back();
  heap_.pop_back();
  return n;
}

}  // namespace sim
