// Deterministic pseudo-random number generation for simulated workloads.
//
// The engine and every workload must be reproducible, so all randomness in
// the repository goes through this xoshiro256** implementation seeded
// explicitly (never from the wall clock).
#pragma once

#include <cstdint>

namespace sim {

/// SplitMix64, used to expand a single seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire-style multiply-shift rejection for unbiased sampling.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0ULL - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace sim
